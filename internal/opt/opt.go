// Package opt implements the machine-independent optimizations the MC
// compiler runs before code generation: constant folding and propagation,
// copy propagation, local common-subexpression elimination, dead-code
// elimination, and CFG simplification. These mirror the "conventional
// optimizations" the paper's compiler performs before the branch-register
// transformation (paper §5, §10).
package opt

import (
	"fmt"

	"branchreg/internal/ir"
)

// Options selects which passes run.
type Options struct {
	Fold     bool
	CopyProp bool
	CSE      bool
	DCE      bool
	Simplify bool
	// LICM is loop-invariant code motion (§10's "code motion"). It is OFF
	// by default: hoisted values live across whole loops, and with a
	// linear-scan allocator that pressure lands disproportionately on the
	// 16-register branch-register machine (measured: +47% data references
	// on the suite), distorting the comparison the paper's
	// globally-allocating compiler did not suffer. Enable it to reproduce
	// that interaction (see EXPERIMENTS.md).
	LICM bool
}

// Default enables every pass except LICM (see the field comment).
var Default = Options{Fold: true, CopyProp: true, CSE: true, DCE: true, Simplify: true}

// None disables every pass (for ablation experiments).
var None = Options{}

// Run optimizes the function in place and re-runs CFG analysis.
func Run(f *ir.Func, o Options) error {
	for round := 0; round < 3; round++ {
		changed := false
		if o.Fold {
			changed = foldConstants(f) || changed
		}
		if o.CopyProp {
			changed = copyProp(f) || changed
		}
		if o.CSE {
			changed = localCSE(f) || changed
		}
		if o.Simplify {
			c, err := simplifyCFG(f)
			if err != nil {
				return err
			}
			changed = changed || c
		}
		if o.DCE {
			changed = deadCode(f) || changed
		}
		if !changed {
			break
		}
	}
	if o.LICM {
		if licm(f) {
			// Clean up after motion (dead copies, newly foldable code).
			if o.CopyProp {
				copyProp(f)
			}
			if o.DCE {
				deadCode(f)
			}
		}
	}
	return f.Analyze()
}

// RunUnit optimizes every function in the unit.
func RunUnit(u *ir.Unit, o Options) error {
	for _, f := range u.Funcs {
		if err := Run(f, o); err != nil {
			return fmt.Errorf("opt: %s: %w", f.Name, err)
		}
	}
	return nil
}

// ---- constant folding / propagation ----

func foldConstants(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		known := map[ir.Reg]int32{}
		for i := range b.Ins {
			in := &b.Ins[i]
			// Propagate a known-constant B operand into the immediate field.
			usesB := (in.Kind.IsBinALU() || in.Kind == ir.OpSetCond || in.Kind == ir.OpBr) && !in.UseImm
			if usesB {
				if v, ok := known[in.B]; ok {
					in.UseImm = true
					in.Imm = int64(v)
					in.B = ir.None
					changed = true
				}
			}
			if in.Kind == ir.OpStore && in.Off == 0 {
				// nothing to fold; stores keep register operands
			}
			// Fold fully-constant ALU ops.
			if in.Kind.IsBinALU() && in.UseImm {
				if a, ok := known[in.A]; ok {
					if v, ok2 := evalALU(in.Kind, a, int32(in.Imm)); ok2 {
						*in = ir.Ins{Kind: ir.OpConst, Dst: in.Dst, Imm: int64(v)}
						changed = true
					}
				}
			}
			if in.Kind == ir.OpSetCond && in.UseImm {
				if a, ok := known[in.A]; ok {
					v := int32(0)
					if holdsInt(in.Cond, a, int32(in.Imm)) {
						v = 1
					}
					*in = ir.Ins{Kind: ir.OpConst, Dst: in.Dst, Imm: int64(v)}
					changed = true
				}
			}
			// Algebraic identities.
			if in.Kind == ir.OpAdd && in.UseImm && in.Imm == 0 {
				*in = ir.Ins{Kind: ir.OpMov, Dst: in.Dst, A: in.A}
				changed = true
			}
			if (in.Kind == ir.OpMul) && in.UseImm && in.Imm == 1 {
				*in = ir.Ins{Kind: ir.OpMov, Dst: in.Dst, A: in.A}
				changed = true
			}
			// Track definitions.
			di, df := in.Defs()
			if di != ir.None {
				if in.Kind == ir.OpConst {
					known[di] = int32(in.Imm)
				} else {
					delete(known, di)
				}
			}
			_ = df
		}
	}
	return changed
}

func evalALU(k ir.OpKind, a, b int32) (int32, bool) {
	switch k {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpSll:
		return a << (uint32(b) & 31), true
	case ir.OpSrl:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case ir.OpSra:
		return a >> (uint32(b) & 31), true
	}
	return 0, false
}

func holdsInt(c ir.Cond, a, b int32) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

// ---- copy propagation ----

func copyProp(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		copyOfI := map[ir.Reg]ir.Reg{}
		copyOfF := map[ir.Reg]ir.Reg{}
		resolveI := func(r ir.Reg) ir.Reg {
			if s, ok := copyOfI[r]; ok {
				return s
			}
			return r
		}
		resolveF := func(r ir.Reg) ir.Reg {
			if s, ok := copyOfF[r]; ok {
				return s
			}
			return r
		}
		killI := func(r ir.Reg) {
			delete(copyOfI, r)
			for k, v := range copyOfI {
				if v == r {
					delete(copyOfI, k)
				}
			}
		}
		killF := func(r ir.Reg) {
			delete(copyOfF, r)
			for k, v := range copyOfF {
				if v == r {
					delete(copyOfF, k)
				}
			}
		}
		for i := range b.Ins {
			in := &b.Ins[i]
			// Rewrite sources.
			rewrite := func(p *ir.Reg, fl bool) {
				if *p == ir.None {
					return
				}
				var n ir.Reg
				if fl {
					n = resolveF(*p)
				} else {
					n = resolveI(*p)
				}
				if n != *p {
					*p = n
					changed = true
				}
			}
			rewrite(&in.A, false)
			rewrite(&in.B, false)
			rewrite(&in.FA, true)
			rewrite(&in.FB, true)
			for j := range in.Args {
				if in.Args[j].Float {
					rewrite(&in.Args[j].R, true)
				} else {
					rewrite(&in.Args[j].R, false)
				}
			}
			di, df := in.Defs()
			if di != ir.None {
				killI(di)
			}
			if df != ir.None {
				killF(df)
			}
			if in.Kind == ir.OpMov && in.Dst != in.A {
				copyOfI[in.Dst] = in.A
			}
			if in.Kind == ir.OpMovF && in.FDst != in.FA {
				copyOfF[in.FDst] = in.FA
			}
		}
	}
	return changed
}

// ---- local common subexpression elimination ----

type cseKey struct {
	kind   ir.OpKind
	a, b   ir.Reg
	fa, fb ir.Reg
	imm    int64
	fimm   float64
	useImm bool
	cond   ir.Cond
	sym    string
	slot   int
	off    int32
	size   int
}

func localCSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := map[cseKey]*ir.Ins{}
		var loads []cseKey // keys of loads, invalidated by stores/calls
		for i := range b.Ins {
			in := &b.Ins[i]
			switch in.Kind {
			case ir.OpStore, ir.OpStoreF, ir.OpCall:
				for _, k := range loads {
					delete(avail, k)
				}
				loads = loads[:0]
			}
			if !cseable(in.Kind) {
				// Kill expressions using a redefined register.
				di, df := in.Defs()
				killDefs(avail, &loads, di, df)
				continue
			}
			// Build the key from the registers the instruction actually
			// reads (unused operand fields are not reliably None).
			k := cseKey{kind: in.Kind, a: ir.None, b: ir.None, fa: ir.None,
				fb: ir.None, imm: in.Imm, fimm: in.FImm, useImm: in.UseImm,
				cond: in.Cond, sym: in.Sym, slot: in.Slot, off: in.Off,
				size: in.Size}
			var is, fs []ir.Reg
			is, fs = in.Uses(is, fs)
			if len(is) > 0 {
				k.a = is[0]
			}
			if len(is) > 1 {
				k.b = is[1]
			}
			if len(fs) > 0 {
				k.fa = fs[0]
			}
			if len(fs) > 1 {
				k.fb = fs[1]
			}
			if prev, ok := avail[k]; ok {
				di, df := in.Defs()
				pi, pf := prev.Defs()
				if di != ir.None && pi != ir.None {
					*in = ir.Ins{Kind: ir.OpMov, Dst: di, A: pi}
					changed = true
				} else if df != ir.None && pf != ir.None {
					*in = ir.Ins{Kind: ir.OpMovF, FDst: df, FA: pf}
					changed = true
				}
				di2, df2 := in.Defs()
				killDefs(avail, &loads, di2, df2)
				continue
			}
			di, df := in.Defs()
			killDefs(avail, &loads, di, df)
			// Only record if the destination is not also a source (else the
			// value is destroyed immediately).
			selfKill := false
			for _, r := range is {
				if di == r {
					selfKill = true
				}
			}
			for _, r := range fs {
				if df == r {
					selfKill = true
				}
			}
			if selfKill {
				continue
			}
			avail[k] = in
			if in.Kind == ir.OpLoad || in.Kind == ir.OpLoadF {
				loads = append(loads, k)
			}
		}
	}
	return changed
}

func cseable(k ir.OpKind) bool {
	switch k {
	case ir.OpConst, ir.OpConstF, ir.OpAddr, ir.OpSlotAddr, ir.OpSetCond,
		ir.OpSetCondF, ir.OpLoad, ir.OpLoadF, ir.OpCvIF, ir.OpCvFI,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg:
		return true
	}
	return k.IsBinALU()
}

// killDefs removes available expressions that read or write redefined regs.
func killDefs(avail map[cseKey]*ir.Ins, loads *[]cseKey, di, df ir.Reg) {
	if di == ir.None && df == ir.None {
		return
	}
	for k, prev := range avail {
		pi, pf := prev.Defs()
		kill := false
		if di != ir.None && (k.a == di || k.b == di || pi == di) {
			kill = true
		}
		if df != ir.None && (k.fa == df || k.fb == df || pf == df) {
			kill = true
		}
		if kill {
			delete(avail, k)
			for j, lk := range *loads {
				if lk == k {
					*loads = append((*loads)[:j], (*loads)[j+1:]...)
					break
				}
			}
		}
	}
}

// ---- dead code elimination ----

func deadCode(f *ir.Func) bool {
	if err := f.BuildCFG(); err != nil {
		return false
	}
	intLive, fltLive := f.ComputeLiveness()
	changed := false
	for bi, b := range f.Blocks {
		liveI := intLive.Out[bi].Clone()
		liveF := fltLive.Out[bi].Clone()
		var keep []ir.Ins
		for i := len(b.Ins) - 1; i >= 0; i-- {
			in := b.Ins[i]
			di, df := in.Defs()
			dead := pure(in.Kind) &&
				(di == ir.None || !liveI.Has(di)) &&
				(df == ir.None || !liveF.Has(df)) &&
				(di != ir.None || df != ir.None)
			if dead {
				changed = true
				continue
			}
			if di != ir.None {
				liveI.Remove(di)
			}
			if df != ir.None {
				liveF.Remove(df)
			}
			var is, fs []ir.Reg
			is, fs = in.Uses(is, fs)
			for _, r := range is {
				liveI.Add(r)
			}
			for _, r := range fs {
				liveF.Add(r)
			}
			keep = append(keep, in)
		}
		// reverse
		for l, r := 0, len(keep)-1; l < r; l, r = l+1, r-1 {
			keep[l], keep[r] = keep[r], keep[l]
		}
		b.Ins = keep
	}
	return changed
}

// pure reports whether an op has no side effects beyond its register def.
func pure(k ir.OpKind) bool {
	switch k {
	case ir.OpConst, ir.OpConstF, ir.OpAddr, ir.OpSlotAddr, ir.OpMov,
		ir.OpMovF, ir.OpSetCond, ir.OpSetCondF, ir.OpLoad, ir.OpLoadF,
		ir.OpCvIF, ir.OpCvFI, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpFNeg:
		return true
	}
	return k.IsBinALU()
}

// ---- CFG simplification ----

func simplifyCFG(f *ir.Func) (bool, error) {
	changed := false
	// Fold constant conditional branches (after folding, OpBr with a
	// constant A operand appears as A defined by OpConst in same block).
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		if t.Kind == ir.OpBr && t.UseImm {
			if c, ok := constOf(b, t.A); ok {
				target := t.Targets[1]
				if holdsInt(t.Cond, c, int32(t.Imm)) {
					target = t.Targets[0]
				}
				*t = ir.Ins{Kind: ir.OpJump, Targets: []string{target}}
				changed = true
			}
		}
	}
	// Thread jumps-to-jumps: a block consisting solely of "jump L" can be
	// bypassed.
	trampoline := map[string]string{}
	for _, b := range f.Blocks {
		if len(b.Ins) == 1 && b.Ins[0].Kind == ir.OpJump {
			trampoline[b.Label] = b.Ins[0].Targets[0]
		}
	}
	resolve := func(l string) string {
		seen := map[string]bool{}
		for trampoline[l] != "" && !seen[l] {
			seen[l] = true
			l = trampoline[l]
		}
		return l
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		for i, l := range t.Targets {
			if r := resolve(l); r != l {
				t.Targets[i] = r
				changed = true
			}
		}
		for i := range t.Cases {
			if r := resolve(t.Cases[i].Target); r != t.Cases[i].Target {
				t.Cases[i].Target = r
				changed = true
			}
		}
	}
	// Remove unreachable blocks.
	if err := f.BuildCFG(); err != nil {
		return changed, err
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if b.RPO >= 0 {
			kept = append(kept, b)
		} else {
			changed = true
		}
	}
	f.Blocks = kept
	return changed, f.BuildCFG()
}

// constOf scans the block for the last OpConst defining r before its
// terminator.
func constOf(b *ir.Block, r ir.Reg) (int32, bool) {
	var v int32
	found := false
	for i := range b.Ins[:len(b.Ins)-1] {
		in := &b.Ins[i]
		di, _ := in.Defs()
		if di == r {
			if in.Kind == ir.OpConst {
				v, found = int32(in.Imm), true
			} else {
				found = false
			}
		}
	}
	return v, found
}
