package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The repo-wide metric-name lint: every registration site in the tree —
// r.Counter("..."), .Gauge(...), .Histogram(...), including the
// fmt.Sprintf variants that build shard- and class-keyed names, plus
// the scrape-time synthetics injected into a Snapshot's maps — must use
// a dotted.lowercase name, and the '.'→'_' Prometheus mapping must stay
// lossless (no two distinct dotted names may collide after mapping).

// registrationRE matches a metric registration with a literal (or
// Sprintf-format) name, tolerating a line break between the call and
// its string argument.
var registrationRE = regexp.MustCompile(`\.(Counter|Gauge|Histogram)\(\s*(?:fmt\.Sprintf\(\s*)?"((?:[^"\\]|\\.)*)"`)

// snapshotInjectRE matches direct writes into a Snapshot's maps
// (handleMetrics' scrape-time synthetics).
var snapshotInjectRE = regexp.MustCompile(`\.(Counters|Gauges|Histograms)\["((?:[^"\\]|\\.)*)"\]\s*=`)

func TestMetricNamesRepoWide(t *testing.T) {
	root := filepath.Join("..", "..")
	names := map[string]string{} // dotted name -> first file:site
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, re := range []*regexp.Regexp{registrationRE, snapshotInjectRE} {
			for _, m := range re.FindAllSubmatch(src, -1) {
				name := string(m[2])
				// A literal ending in "." is a string-concatenation prefix
				// ("emu.trap." + kind); lint it as prefix plus a dynamic
				// final segment. The site itself must sanitize the suffix.
				if strings.HasSuffix(name, ".") {
					name += "%s"
				}
				if _, seen := names[name]; !seen {
					names[name] = path
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sanity-check the scanner itself: if the regexes rot, the test must
	// fail loudly instead of passing over an empty set.
	if len(names) < 20 {
		t.Fatalf("scanner found only %d registration sites — the lint regex no longer matches the codebase", len(names))
	}
	for _, known := range []string{"serve.requests", "serve.queue.depth.total", "serve.queue.depth.%d"} {
		if _, ok := names[known]; !ok {
			t.Errorf("scanner missed known registration %q", known)
		}
	}

	promSeen := map[string]string{} // prom name -> dotted name
	for name, site := range names {
		if !ValidMetricName(name) {
			t.Errorf("%s: metric name %q violates the dotted.lowercase convention", site, name)
			continue
		}
		p := PromName(name)
		if prev, ok := promSeen[p]; ok && prev != name {
			t.Errorf("metric names %q and %q collide as Prometheus name %q — the '.'→'_' mapping must stay lossless", name, prev, p)
		}
		promSeen[p] = name
	}
}
