package obs

import (
	"sync"
	"time"
)

// The flight recorder: a bounded ring of fully-traced requests, the
// request-level analogue of the guard incident ring. Every finished
// request is offered; the recorder keeps the ones worth explaining
// after the fact — server errors, fallback- or reroute-annotated
// responses, slow requests, and a deterministic 1-in-N sample of
// everything else — each with its complete span tree and a
// request/response summary. brserve serves the ring at
// GET /v1/debug/requests (summaries) and /v1/debug/requests/{id}
// (full span tree), so a chaos run or a p99 spike decomposes into
// concrete, replayable request records instead of aggregate counters.

// RequestRecord is one retained request: the summary plus its span tree.
type RequestRecord struct {
	// ID is the request ID (generated at admission or propagated from
	// the client's X-Request-Id).
	ID string `json:"id"`
	// Time is when admission started the request's trace.
	Time time.Time `json:"time"`
	// Class is the guard workload class ("sieve/branchreg", "src:<hash>/baseline").
	Class string `json:"class,omitempty"`
	// Tenant names the caller, when the request carried one.
	Tenant string `json:"tenant,omitempty"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status"`
	// Engine is the emulator tier that served the response, if any.
	Engine string `json:"engine,omitempty"`
	// FallbackFrom / Rerouted mirror the guard annotations on the response.
	FallbackFrom []string `json:"fallback_from,omitempty"`
	Rerouted     bool     `json:"rerouted,omitempty"`
	// Coalesced marks a response served from another request's execution.
	Coalesced bool `json:"coalesced,omitempty"`
	// Trap is the trap kind for a trapped run ("" for a clean one).
	Trap string `json:"trap,omitempty"`
	// Error is the response's error string, if any.
	Error string `json:"error,omitempty"`
	// Phases is the response's wall-clock decomposition in nanoseconds
	// (queue_ns, compile_ns, run_ns, total_ns).
	Phases map[string]int64 `json:"phases,omitempty"`
	// Reasons lists why the recorder retained this request: "error",
	// "fallback", "slow", and/or "sampled".
	Reasons []string `json:"reasons,omitempty"`
	// Spans is the request's span tree (SpanRecord.Parent links it).
	Spans []SpanRecord `json:"spans,omitempty"`
}

// FlightRecorder retains interesting requests in a bounded ring.
// All methods are safe for concurrent use; a nil recorder drops
// everything.
type FlightRecorder struct {
	capN        int
	slowNS      int64
	sampleEvery int64

	mu       sync.Mutex
	ring     []RequestRecord
	next     int
	offered  int64
	retained int64
}

// NewFlightRecorder builds a recorder keeping up to capN requests.
// slowNS retains any request whose total phase exceeds it (<= 0
// disables the slow criterion); sampleEvery retains every Nth offered
// request regardless of interest (<= 0 disables sampling).
func NewFlightRecorder(capN int, slowNS int64, sampleEvery int) *FlightRecorder {
	if capN <= 0 {
		capN = 256
	}
	return &FlightRecorder{capN: capN, slowNS: slowNS, sampleEvery: int64(sampleEvery), ring: make([]RequestRecord, 0, capN)}
}

// reasons classifies why a record is worth retaining (nil = drop).
// The offered count n drives deterministic sampling.
func (f *FlightRecorder) reasons(rec *RequestRecord, n int64) []string {
	var out []string
	if rec.Status >= 500 || rec.Status == 408 {
		out = append(out, "error")
	}
	if len(rec.FallbackFrom) > 0 || rec.Rerouted {
		out = append(out, "fallback")
	}
	if f.slowNS > 0 && rec.Phases["total_ns"] >= f.slowNS {
		out = append(out, "slow")
	}
	if f.sampleEvery > 0 && n%f.sampleEvery == 0 {
		out = append(out, "sampled")
	}
	return out
}

// Offer records the request if it meets a retention criterion,
// evicting the oldest retained record when the ring is full. It
// reports whether the record was retained.
func (f *FlightRecorder) Offer(rec RequestRecord) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offered++
	rec.Reasons = f.reasons(&rec, f.offered)
	if len(rec.Reasons) == 0 {
		return false
	}
	f.retained++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, rec)
		f.next = len(f.ring) % cap(f.ring)
		return true
	}
	f.ring[f.next] = rec
	f.next = (f.next + 1) % cap(f.ring)
	return true
}

// Snapshot returns the retained records newest-first (spans included),
// plus the all-time retained and offered totals. retained −
// len(records) have been evicted from the bounded ring.
func (f *FlightRecorder) Snapshot() (records []RequestRecord, retained, offered int64) {
	if f == nil {
		return nil, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	records = make([]RequestRecord, 0, len(f.ring))
	for i := 0; i < len(f.ring); i++ {
		records = append(records, f.ring[(f.next-1-i+2*cap(f.ring))%cap(f.ring)])
	}
	return records, f.retained, f.offered
}

// Get returns the retained record with the given request ID. When one
// ID was offered more than once (a retried client reusing its
// X-Request-Id), the newest record wins.
func (f *FlightRecorder) Get(id string) (RequestRecord, bool) {
	if f == nil {
		return RequestRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; i < len(f.ring); i++ {
		rec := f.ring[(f.next-1-i+2*cap(f.ring))%cap(f.ring)]
		if rec.ID == id {
			return rec, true
		}
	}
	return RequestRecord{}, false
}
