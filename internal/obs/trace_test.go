package obs

import (
	"context"
	"encoding/json"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin("suite", "exp", 0, 0)
	root.SetArg("machines", "2")
	child := tr.Begin("run:sieve", "run", root.ID(), 3)
	child.SetArg("engine", "fast")
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start time: root began first.
	if spans[0].Name != "suite" || spans[1].Name != "run:sieve" {
		t.Fatalf("order wrong: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[1].TID != 3 || spans[1].Args["engine"] != "fast" {
		t.Fatalf("child fields wrong: %+v", spans[1])
	}
	if spans[0].DurMicros < spans[1].DurMicros {
		t.Fatalf("root (%v us) shorter than child (%v us)", spans[0].DurMicros, spans[1].DurMicros)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Begin("x", "", 0, 0)
	s.SetArg("k", "v")
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span must have ID 0")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer must have no spans")
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer()
	s := tr.Begin("compile", "driver", 0, 1)
	s.End()
	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not valid trace_event JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 { // process_name metadata + the span
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event ph = %q, want metadata", doc.TraceEvents[0].Ph)
	}
	ev := doc.TraceEvents[1]
	if ev.Ph != "X" || ev.Name != "compile" || ev.PID != 1 || ev.TID != 1 {
		t.Fatalf("span event wrong: %+v", ev)
	}

	if _, err := tr.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != 0 || WorkerFromContext(ctx) != 0 {
		t.Fatal("empty context must yield zero values")
	}
	ctx = ContextWithSpan(ctx, 42)
	ctx = ContextWithWorker(ctx, 7)
	if SpanFromContext(ctx) != 42 {
		t.Fatalf("span = %d", SpanFromContext(ctx))
	}
	if WorkerFromContext(ctx) != 7 {
		t.Fatalf("worker = %d", WorkerFromContext(ctx))
	}
}
