package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot. Registry names follow the repo's dotted.lowercase
// convention ("serve.queue_wait_ns"); the Prometheus name is the same
// with '.' replaced by '_'. That mapping must be lossless — two dotted
// names must never collide after mapping — which the repo-root metric
// name lint test enforces over every registration site in the tree.
//
// Histograms map to native Prometheus histograms: the log2 bucket with
// bits.Len64 index i holds integer observations in [2^(i-1), 2^i), so
// its cumulative upper bound is exactly le = 2^i − 1 (le="0" for the
// zero bucket). Quantile estimates are additionally exposed as a
// companion gauge family "<name>_q{q="0.5"|"0.9"|"0.99"}" — the text
// format has no histogram-with-quantiles type, and serving them beside
// the buckets keeps dashboards free of histogram_quantile() while the
// buckets stay available for cross-instance aggregation.

// ValidMetricName reports whether a registry name follows the
// dotted.lowercase convention: one or more '.'-separated segments of
// [a-z0-9_]+, starting with a letter. Printf verbs ("serve.queue.depth.%d")
// are allowed as whole-segment placeholders, since registration sites
// build shard- and class-keyed names with fmt.Sprintf.
func ValidMetricName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for _, seg := range strings.Split(name, ".") {
		if seg == "" {
			return false
		}
		if seg == "%d" || seg == "%s" {
			continue
		}
		for _, c := range seg {
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
				return false
			}
		}
	}
	return true
}

// PromName maps a dotted registry name to its Prometheus name.
func PromName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// WriteProm renders the snapshot in the Prometheus text format,
// deterministically ordered by name.
func (s Snapshot) WriteProm(w io.Writer) {
	for _, name := range sortedKeys(s.Counters) {
		p := PromName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := PromName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p, p, s.Gauges[name])
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		p := PromName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", p)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, bucketUpper(b.Bit), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", p, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", p, h.Count)
		fmt.Fprintf(w, "# TYPE %s_q gauge\n", p)
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s_q{q=\"%s\"} %s\n", p, q.label, strconv.FormatFloat(q.v, 'g', -1, 64))
		}
	}
}

// bucketUpper is the inclusive integer upper bound of log2 bucket bit:
// observations are non-negative int64s, so bucket bit holds values
// <= 2^bit − 1 (bit 0 is exactly zero).
func bucketUpper(bit int) int64 {
	if bit <= 0 {
		return 0
	}
	if bit >= 63 {
		return 1<<63 - 1
	}
	return 1<<int64(bit) - 1
}

// LintProm parses a Prometheus text-format exposition strictly enough
// to pin the format in tests: every line must be a comment, blank, or a
// well-formed sample; TYPE declarations must precede and match their
// family's samples; histogram families must carry monotonically
// non-decreasing cumulative buckets ending in le="+Inf" that agrees
// with _count. It returns the first violation, or nil.
func LintProm(data []byte) error {
	types := map[string]string{}
	// histogram accounting: family -> last cumulative bucket value,
	// +Inf bucket value, _count value (pointers distinguish "unseen").
	lastBucket := map[string]float64{}
	infBucket := map[string]float64{}
	countVal := map[string]float64{}
	sawInf := map[string]bool{}
	sawCount := map[string]bool{}

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 4 && fields[1] == "TYPE" {
					return fmt.Errorf("prom line %d: malformed %s comment: %q", lineNo, fields[1], line)
				}
				if fields[1] == "TYPE" {
					name, typ := fields[2], fields[3]
					if !validPromName(name) {
						return fmt.Errorf("prom line %d: bad metric name %q", lineNo, name)
					}
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("prom line %d: unknown type %q", lineNo, typ)
					}
					if _, dup := types[name]; dup {
						return fmt.Errorf("prom line %d: duplicate TYPE for %q", lineNo, name)
					}
					types[name] = typ
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("prom line %d: %w", lineNo, err)
		}
		fam := promFamily(name, types)
		if typ, ok := types[fam]; !ok {
			return fmt.Errorf("prom line %d: sample %q has no preceding TYPE", lineNo, name)
		} else if typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("prom line %d: histogram bucket %q lacks le label", lineNo, name)
				}
				if le == "+Inf" {
					infBucket[fam] = value
					sawInf[fam] = true
				} else {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("prom line %d: bad le %q", lineNo, le)
					}
					if value < lastBucket[fam] {
						return fmt.Errorf("prom line %d: %s buckets not cumulative (%g < %g)", lineNo, fam, value, lastBucket[fam])
					}
					lastBucket[fam] = value
				}
			case strings.HasSuffix(name, "_sum"):
			case strings.HasSuffix(name, "_count"):
				countVal[fam] = value
				sawCount[fam] = true
			default:
				return fmt.Errorf("prom line %d: unexpected histogram sample %q", lineNo, name)
			}
		}
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		if !sawInf[fam] {
			return fmt.Errorf("prom: histogram %s has no le=\"+Inf\" bucket", fam)
		}
		if !sawCount[fam] {
			return fmt.Errorf("prom: histogram %s has no _count sample", fam)
		}
		if infBucket[fam] != countVal[fam] {
			return fmt.Errorf("prom: histogram %s +Inf bucket %g != _count %g", fam, infBucket[fam], countVal[fam])
		}
		if lastBucket[fam] > infBucket[fam] {
			return fmt.Errorf("prom: histogram %s finite buckets exceed +Inf (%g > %g)", fam, lastBucket[fam], infBucket[fam])
		}
	}
	return nil
}

// promFamily strips a histogram sample suffix when its base family is
// TYPE histogram (a bare name like "x_count" may otherwise be its own
// counter family).
func promFamily(name string, types map[string]string) string {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// validPromName checks the Prometheus metric-name grammar.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// parsePromSample decodes one sample line: name[{labels}] value [ts].
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	labels = map[string]string{}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		for _, pair := range splitPromLabels(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			labels[k] = strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n").Replace(v[1 : len(v)-1])
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q needs a value (and at most a timestamp)", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// splitPromLabels splits `a="1",b="2"` on commas outside quotes.
func splitPromLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
