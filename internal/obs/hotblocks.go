package obs

import (
	"fmt"
	"sort"
	"strings"

	"branchreg/internal/emu"
	"branchreg/internal/isa"
)

// The hot-block profiler: turns one run's emu.BlockProfile (flow counts
// recorded only at transfers of control) into the paper-style dynamic
// tables — per-basic-block execution counts, per-branch taken/not-taken
// tallies, and branch-cost attribution under the §7 three-stage model.
//
// Blocks are segmented dynamically, from the run itself, not from a
// static CFG: a new block starts wherever the reconstructed execution
// count changes, where any taken transfer landed (Arrive > 0), or where
// the enclosing function changes. This is exactly the basic-block notion
// the paper's dynamic measurements use — maximal straight-line runs with
// a single observed entry — and needs no decoder support.

// HotBlock is one dynamic basic block of a profiled run.
type HotBlock struct {
	Fn   string `json:"fn"`   // enclosing function ("" for pad slots)
	Addr int32  `json:"addr"` // byte address of the first instruction
	Len  int    `json:"len"`  // instructions in the block

	Count    int64   `json:"count"`     // times the block executed
	DynInsts int64   `json:"dyn_insts"` // Count × Len
	PctInsts float64 `json:"pct_insts"` // DynInsts as % of the run's total

	Taken    int64 `json:"taken"`     // taken outcomes at branch sites in the block
	NotTaken int64 `json:"not_taken"` // untaken outcomes

	// CostCycles attributes branch cost to the block under the 3-stage
	// model: on the baseline machine every executed transfer pays the
	// delayed-branch bubble (N-2 = 1 cycle, taken or not, paper §7); on
	// the BRM only late target calculations pay (the accumulated
	// Figure 9 penalty; the N-3 conditional delay is 0 at 3 stages).
	CostCycles int64 `json:"cost_cycles"`
}

// HotBlocks aggregates a profile into dynamic basic blocks, hottest
// (most dynamic instructions) first, truncated to top entries (top <= 0
// keeps all). Blocks that never executed are dropped.
func HotBlocks(p *isa.Program, prof *emu.BlockProfile, top int) []HotBlock {
	if p == nil || prof == nil || len(prof.Arrive) != len(p.Text) {
		return nil
	}
	counts := prof.Counts()
	var total int64
	for _, c := range counts {
		total += c
	}

	// Three-stage baseline transfer bubble, stages-2 = 1 cycle per
	// executed transfer (pipeline.Model.BaselineTransferDelay at 3
	// stages; not imported — pipeline's tests sit above obs via driver,
	// so obs must not import pipeline).
	const baseDelay = int64(3 - 2)

	var blocks []HotBlock
	var cur *HotBlock
	for i := range counts {
		fn := p.FuncOfPC[i]
		if cur == nil || prof.Arrive[i] > 0 || counts[i] != cur.Count || fn != cur.Fn {
			blocks = append(blocks, HotBlock{Fn: fn, Addr: isa.IndexToAddr(i), Count: counts[i]})
			cur = &blocks[len(blocks)-1]
		}
		cur.Len++
		cur.Taken += prof.Taken[i]
		cur.NotTaken += prof.NotTaken[i]
		if p.Kind == isa.Baseline {
			cur.CostCycles += (prof.Taken[i] + prof.NotTaken[i]) * baseDelay
		} else {
			cur.CostCycles += prof.Penalty[i]
		}
	}

	kept := blocks[:0]
	for _, b := range blocks {
		if b.Count == 0 {
			continue
		}
		b.DynInsts = b.Count * int64(b.Len)
		if total > 0 {
			b.PctInsts = 100 * float64(b.DynInsts) / float64(total)
		}
		kept = append(kept, b)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].DynInsts != kept[j].DynInsts {
			return kept[i].DynInsts > kept[j].DynInsts
		}
		return kept[i].Addr < kept[j].Addr
	})
	if top > 0 && len(kept) > top {
		kept = kept[:top]
	}
	return append([]HotBlock(nil), kept...)
}

// FormatHotBlocks renders a hot-block table. totalInsts is the run's
// Stats.Instructions, printed in the footer so the coverage of the
// listed blocks is visible.
func FormatHotBlocks(title string, blocks []HotBlock, totalInsts int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %10s %5s %12s %14s %7s %12s %12s %11s\n",
		"func", "addr", "len", "count", "dyn insts", "%insts", "taken", "not taken", "cost (cyc)")
	var listed, cost int64
	for _, blk := range blocks {
		fn := blk.Fn
		if fn == "" {
			fn = "(pad)"
		}
		fmt.Fprintf(&b, "%-16s %#10x %5d %12d %14d %6.2f%% %12d %12d %11d\n",
			fn, uint32(blk.Addr), blk.Len, blk.Count, blk.DynInsts, blk.PctInsts,
			blk.Taken, blk.NotTaken, blk.CostCycles)
		listed += blk.DynInsts
		cost += blk.CostCycles
	}
	if totalInsts > 0 {
		fmt.Fprintf(&b, "listed blocks: %d of %d dynamic instructions (%.2f%%), %d branch-cost cycles\n",
			listed, totalInsts, 100*float64(listed)/float64(totalInsts), cost)
	}
	return b.String()
}
