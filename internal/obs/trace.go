package obs

import (
	"context"
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// The span tracer: explicit Begin/End spans with parent IDs, covering
// suite → workload → compile/run/oracle in the experiment engine.
// Exportable two ways: the tracer's own JSON schema (Spans/JSON) and the
// Chrome trace_event format (ChromeTrace), which Perfetto and
// chrome://tracing load directly.
//
// Every method is nil-receiver safe — a nil *Tracer hands out nil *Spans
// whose methods no-op — so instrumented code paths need no "is tracing
// on" conditionals.

// SpanID identifies a span within one Tracer; 0 means "no parent".
type SpanID int64

// SpanRecord is one finished span.
type SpanRecord struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	Cat    string `json:"cat,omitempty"`
	TID    int    `json:"tid"`
	// StartMicros/DurMicros are microseconds since the tracer was created.
	StartMicros float64           `json:"start_us"`
	DurMicros   float64           `json:"dur_us"`
	Args        map[string]string `json:"args,omitempty"`
}

// Tracer collects spans. Safe for concurrent use from worker goroutines.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	next  SpanID
	spans []SpanRecord
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Span is an in-flight span; call End to record it.
type Span struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	cat    string
	tid    int
	begin  time.Time

	mu   sync.Mutex
	args map[string]string
}

// Begin starts a span. parent is the enclosing span's ID (0 for a root);
// tid groups spans onto one timeline row in trace viewers (the worker
// index, so concurrent jobs render as parallel tracks). A nil tracer
// returns a nil span, whose methods no-op.
func (t *Tracer) Begin(name, cat string, parent SpanID, tid int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	id := t.next
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parent, name: name, cat: cat, tid: tid, begin: time.Now()}
}

// ID returns the span's ID (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetArg attaches a key/value annotation (e.g. the engine a run used).
func (s *Span) SetArg(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[k] = v
	s.mu.Unlock()
}

// End records the span. Calling End twice records the span twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	args := s.args
	s.mu.Unlock()
	rec := SpanRecord{
		ID:          s.id,
		Parent:      s.parent,
		Name:        s.name,
		Cat:         s.cat,
		TID:         s.tid,
		StartMicros: float64(s.begin.Sub(s.t.start).Nanoseconds()) / 1e3,
		DurMicros:   float64(end.Sub(s.begin).Nanoseconds()) / 1e3,
		Args:        args,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
}

// Spans returns the finished spans sorted by start time then ID.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartMicros != out[j].StartMicros {
			return out[i].StartMicros < out[j].StartMicros
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// JSON renders the spans in the tracer's own schema:
// {"spans": [SpanRecord...]}.
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Spans []SpanRecord `json:"spans"`
	}{t.Spans()}, "", "  ")
}

// chromeEvent is one trace_event entry ("X" = complete event with
// duration, "M" = metadata).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders the spans in Chrome trace_event JSON ("X" complete
// events, timestamps in microseconds), loadable in Perfetto or
// chrome://tracing. Parent/child nesting is conveyed by timestamp
// containment within a tid row, per the format's convention.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]string{"name": "brbench"},
	}}
	for _, s := range t.Spans() {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   s.StartMicros,
			Dur:  s.DurMicros,
			PID:  1,
			TID:  s.TID,
			Args: s.Args,
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}, "", "  ")
}

// ---- context plumbing ----
//
// The experiment engine passes the enclosing span and the worker index
// down through the context, so pool jobs parent their spans correctly
// without threading tracer state through every signature.

type ctxKey int

const (
	spanKey ctxKey = iota
	workerKey
)

// ContextWithSpan returns ctx carrying id as the current span.
func ContextWithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, spanKey, id)
}

// SpanFromContext returns the current span ID, or 0.
func SpanFromContext(ctx context.Context) SpanID {
	id, _ := ctx.Value(spanKey).(SpanID)
	return id
}

// ContextWithWorker returns ctx carrying the worker index (used as the
// trace tid, so concurrent jobs land on separate viewer rows).
func ContextWithWorker(ctx context.Context, tid int) context.Context {
	return context.WithValue(ctx, workerKey, tid)
}

// WorkerFromContext returns the worker index, or 0.
func WorkerFromContext(ctx context.Context) int {
	tid, _ := ctx.Value(workerKey).(int)
	return tid
}
