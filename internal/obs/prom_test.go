package obs

import (
	"strings"
	"testing"
)

func TestValidMetricName(t *testing.T) {
	valid := []string{
		"serve.requests", "serve.queue_wait_ns", "serve.queue.depth.%d",
		"guard.breaker.open_now", "emu.trap.%s", "serve.latency.total.2xx.fused",
		"x",
	}
	for _, n := range valid {
		if !ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = false, want true", n)
		}
	}
	invalid := []string{
		"", "Serve.requests", "serve..requests", ".serve", "serve.",
		"serve.Queue", "serve-requests", "serve.re quests", "2serve.x",
	}
	for _, n := range invalid {
		if ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = true, want false", n)
		}
	}
}

func TestPromName(t *testing.T) {
	if got := PromName("serve.queue.depth.total"); got != "serve_queue_depth_total" {
		t.Errorf("PromName = %q", got)
	}
}

func TestWritePromLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(7)
	r.Gauge("serve.inflight").Set(3)
	h := r.Histogram("serve.total_ns")
	for _, v := range []int64{0, 1, 3, 900, 900, 1 << 40} {
		h.Observe(v)
	}
	var b strings.Builder
	r.Snapshot().WriteProm(&b)
	out := b.String()
	if err := LintProm([]byte(out)); err != nil {
		t.Fatalf("WriteProm output fails LintProm: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE serve_requests counter\nserve_requests 7\n",
		"# TYPE serve_inflight gauge\nserve_inflight 3\n",
		"# TYPE serve_total_ns histogram\n",
		`serve_total_ns_bucket{le="0"} 1`,
		`serve_total_ns_bucket{le="+Inf"} 6`,
		"serve_total_ns_count 6\n",
		`serve_total_ns_q{q="0.5"}`,
		`serve_total_ns_q{q="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output lacks %q:\n%s", want, out)
		}
	}
}

func TestWritePromBucketBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h.x")
	h.Observe(4) // bucket bit 3 → le = 7
	var b strings.Builder
	r.Snapshot().WriteProm(&b)
	if !strings.Contains(b.String(), `h_x_bucket{le="7"} 1`) {
		t.Errorf("bucket bit 3 should expose le=7:\n%s", b.String())
	}
}

func TestLintPromRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no type", "foo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"bad name", "# TYPE 2foo counter\n2foo 1\n"},
		{"dup type", "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"missing inf", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 6\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 5\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n"},
	}
	for _, c := range cases {
		if err := LintProm([]byte(c.text)); err == nil {
			t.Errorf("%s: LintProm accepted invalid exposition:\n%s", c.name, c.text)
		}
	}
}

func TestLintPromAcceptsLabelsAndTimestamps(t *testing.T) {
	text := "# HELP foo a counter\n# TYPE foo counter\n" +
		`foo{a="x,y",b="z\"q"} 12 1700000000` + "\n"
	if err := LintProm([]byte(text)); err != nil {
		t.Fatalf("LintProm rejected valid exposition: %v", err)
	}
}
