package obs

import (
	"math"
	"testing"
)

// The quantile estimator's contract is pinned exactly: rank q·Count
// lands in a bucket, and the estimate interpolates linearly across that
// bucket's [2^(Bit-1), 2^Bit) range.

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot precomputed quantiles = %g/%g, want 0/0", s.P50, s.P99)
	}
}

func TestHistogramQuantileAllZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(0)
	}
	s := h.snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("all-zero Quantile(0.99) = %g, want 0", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	// Eight observations, all in bucket bit 3 (range [4, 8)). The
	// estimator's exact outputs: rank = 8q, frac = rank/8, value = 4 + 4·frac.
	var h Histogram
	for i := 0; i < 8; i++ {
		h.Observe(5)
	}
	s := h.snapshot()
	cases := []struct{ q, want float64 }{
		{0, 4}, {0.25, 5}, {0.5, 6}, {0.75, 7}, {1, 8},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileTwoBuckets(t *testing.T) {
	// 6 observations in bucket bit 2 ([2,4)) and 2 in bit 4 ([8,16)).
	var h Histogram
	for i := 0; i < 6; i++ {
		h.Observe(3)
	}
	h.Observe(9)
	h.Observe(9)
	s := h.snapshot()
	// p50: rank 4 ≤ cum 6 → bucket bit 2, frac 4/6 → 2 + 2·(4/6).
	if got, want := s.Quantile(0.5), 2+2*(4.0/6.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g, want %g", got, want)
	}
	// p99: rank 7.92 > 6 → bucket bit 4, frac (7.92-6)/2 → 8 + 8·0.96.
	if got, want := s.Quantile(0.99), 8+8*((7.92-6)/2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.99) = %g, want %g", got, want)
	}
	// Precomputed snapshot fields agree with on-demand estimates.
	if s.P50 != s.Quantile(0.5) || s.P90 != s.Quantile(0.9) || s.P99 != s.Quantile(0.99) {
		t.Errorf("snapshot P50/P90/P99 diverge from Quantile()")
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Observe(100)
	s := h.snapshot()
	if got := s.Quantile(-3); got != 64 { // lower bound of bucket bit 7
		t.Errorf("Quantile(-3) = %g, want 64", got)
	}
	if got := s.Quantile(7); got != 128 { // upper bound
		t.Errorf("Quantile(7) = %g, want 128", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for v := int64(1); v < 100000; v = v*3 + 1 {
		for i := int64(0); i < v%17+1; i++ {
			h.Observe(v)
		}
	}
	s := h.snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: Quantile(%g) = %g < %g", q, got, prev)
		}
		prev = got
	}
}
