package obs

import (
	"context"
	"time"
)

// Request-scoped tracing: a ReqTrace is one request's private span
// recorder, created at brserve admission, carried down the stack via
// context, and harvested into the flight recorder when the response is
// written. It reuses the Tracer span model (parent IDs, args, Chrome
// export) but scopes the span set and the timestamp origin to a single
// request, so a harvested span tree is self-contained.
//
// Every method is nil-receiver safe, and StartSpan on a context with no
// trace attached returns a nil *Span whose methods no-op — instrumented
// code in driver and guard pays nothing when called outside a traced
// request (brbench, exp.Runner, tests).

// ReqTrace is one request's span recorder.
type ReqTrace struct {
	// ID is the request ID (the X-Request-Id value).
	ID string
	// Start anchors the trace's relative timestamps in wall-clock time.
	Start time.Time
	tr    *Tracer
}

// NewReqTrace returns a trace whose span timestamps are relative to now.
func NewReqTrace(id string) *ReqTrace {
	return &ReqTrace{ID: id, Start: time.Now(), tr: NewTracer()}
}

// Begin starts a span in this trace. parent is 0 for the root span.
func (rt *ReqTrace) Begin(name, cat string, parent SpanID) *Span {
	if rt == nil {
		return nil
	}
	return rt.tr.Begin(name, cat, parent, 0)
}

// Spans returns the finished spans sorted by start time (the span tree,
// linked by SpanRecord.Parent).
func (rt *ReqTrace) Spans() []SpanRecord {
	if rt == nil {
		return nil
	}
	return rt.tr.Spans()
}

// reqTraceKey continues the ctxKey space declared in trace.go.
const reqTraceKey ctxKey = iota + 16

// ContextWithReqTrace returns ctx carrying the request trace.
func ContextWithReqTrace(ctx context.Context, rt *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey, rt)
}

// ReqTraceFromContext returns the request trace carried by ctx, or nil.
func ReqTraceFromContext(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(reqTraceKey).(*ReqTrace)
	return rt
}

// StartSpan begins a child span of the request trace carried by ctx,
// parented to the current span, and returns a context in which the new
// span is current. With no trace attached it returns (nil, ctx) — the
// nil span's SetArg/End no-op, so call sites need no conditionals.
func StartSpan(ctx context.Context, name, cat string) (*Span, context.Context) {
	rt := ReqTraceFromContext(ctx)
	if rt == nil {
		return nil, ctx
	}
	sp := rt.Begin(name, cat, SpanFromContext(ctx))
	return sp, ContextWithSpan(ctx, sp.ID())
}
