package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestFlightRecorderRetentionReasons(t *testing.T) {
	f := NewFlightRecorder(8, 1000, 0) // slow ≥ 1µs, sampling off
	cases := []struct {
		rec  RequestRecord
		want []string
	}{
		{RequestRecord{ID: "ok", Status: 200, Phases: map[string]int64{"total_ns": 10}}, nil},
		{RequestRecord{ID: "err", Status: 500}, []string{"error"}},
		{RequestRecord{ID: "timeout", Status: 408}, []string{"error"}},
		{RequestRecord{ID: "fb", Status: 200, FallbackFrom: []string{"adaptive"}}, []string{"fallback"}},
		{RequestRecord{ID: "rr", Status: 200, Rerouted: true}, []string{"fallback"}},
		{RequestRecord{ID: "slow", Status: 200, Phases: map[string]int64{"total_ns": 5000}}, []string{"slow"}},
		{RequestRecord{ID: "422", Status: 422, Phases: map[string]int64{"total_ns": 10}}, nil},
	}
	for _, c := range cases {
		kept := f.Offer(c.rec)
		if kept != (len(c.want) > 0) {
			t.Errorf("Offer(%s): kept=%v, want %v", c.rec.ID, kept, len(c.want) > 0)
			continue
		}
		if !kept {
			continue
		}
		got, ok := f.Get(c.rec.ID)
		if !ok {
			t.Errorf("Get(%s): not found after retention", c.rec.ID)
			continue
		}
		if fmt.Sprint(got.Reasons) != fmt.Sprint(c.want) {
			t.Errorf("Get(%s).Reasons = %v, want %v", c.rec.ID, got.Reasons, c.want)
		}
	}
}

func TestFlightRecorderSampling(t *testing.T) {
	f := NewFlightRecorder(64, 0, 4) // every 4th offered request retained
	for i := 1; i <= 16; i++ {
		f.Offer(RequestRecord{ID: fmt.Sprintf("r%d", i), Status: 200})
	}
	recs, retained, offered := f.Snapshot()
	if offered != 16 || retained != 4 || len(recs) != 4 {
		t.Fatalf("sampling: offered=%d retained=%d len=%d, want 16/4/4", offered, retained, len(recs))
	}
	// Newest first: offers 16, 12, 8, 4 are the sampled ones.
	for i, want := range []string{"r16", "r12", "r8", "r4"} {
		if recs[i].ID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, recs[i].ID, want)
		}
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder(4, 0, 1) // retain everything, tiny ring
	for i := 1; i <= 10; i++ {
		f.Offer(RequestRecord{ID: fmt.Sprintf("r%d", i), Status: 200})
	}
	recs, retained, offered := f.Snapshot()
	if retained != 10 || offered != 10 {
		t.Fatalf("retained=%d offered=%d, want 10/10", retained, offered)
	}
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, want := range []string{"r10", "r9", "r8", "r7"} {
		if recs[i].ID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, recs[i].ID, want)
		}
	}
	if _, ok := f.Get("r3"); ok {
		t.Errorf("evicted record r3 still retrievable")
	}
	if _, ok := f.Get("r9"); !ok {
		t.Errorf("retained record r9 not retrievable")
	}
}

func TestFlightRecorderDuplicateIDNewestWins(t *testing.T) {
	f := NewFlightRecorder(8, 0, 1)
	f.Offer(RequestRecord{ID: "dup", Status: 200, Engine: "old"})
	f.Offer(RequestRecord{ID: "dup", Status: 200, Engine: "new"})
	got, ok := f.Get("dup")
	if !ok || got.Engine != "new" {
		t.Fatalf("Get(dup) = %+v ok=%v, want newest (engine new)", got, ok)
	}
}

// TestFlightRecorderConcurrent exercises the ring under concurrent
// writers and readers; run with -race it proves the locking discipline.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32, 0, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Offer(RequestRecord{
					ID:     fmt.Sprintf("g%d-%d", g, i),
					Status: 200,
					Spans:  []SpanRecord{{ID: 1, Name: "request"}},
				})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				recs, _, _ := f.Snapshot()
				if len(recs) > 32 {
					t.Errorf("snapshot exceeded ring cap: %d", len(recs))
					return
				}
				f.Get("g0-50")
			}
		}()
	}
	wg.Wait()
	recs, retained, offered := f.Snapshot()
	if offered != 1600 || retained != 1600 {
		t.Fatalf("offered=%d retained=%d, want 1600/1600", offered, retained)
	}
	if len(recs) != 32 {
		t.Fatalf("final ring size %d, want 32", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate record %s in snapshot", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	if f.Offer(RequestRecord{ID: "x", Status: 500}) {
		t.Errorf("nil recorder retained a record")
	}
	if recs, retained, offered := f.Snapshot(); recs != nil || retained != 0 || offered != 0 {
		t.Errorf("nil recorder snapshot = %v/%d/%d", recs, retained, offered)
	}
	if _, ok := f.Get("x"); ok {
		t.Errorf("nil recorder Get found a record")
	}
}
