// Package obs is the run-wide observability layer: a lock-cheap metrics
// registry (counters, gauges, log2-bucketed histograms), an explicit
// start/end span tracer exportable as Chrome trace_event JSON, and the
// hot-block profile aggregation that turns the emulator's per-instruction
// flow counts into the paper-style dynamic branch-cost attribution tables.
//
// The package sits below driver and exp (both record into it) and above
// emu/isa (whose data it aggregates); emu itself never imports obs, so
// the fast execution loop stays free of observability calls — it
// accumulates plain count arrays (emu.BlockProfile) that are folded into
// obs structures after the run. obs also must not import pipeline:
// pipeline's simulation tests sit above obs via driver, and the pair
// would form a test-only import cycle.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// all methods are safe for concurrent use and cost one atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed log2 bucket count: bucket i holds observations
// v with bits.Len64(v) == i, so bucket 0 is exactly 0, bucket i covers
// [2^(i-1), 2^i), and every int64 has a bucket without any configuration.
const histBuckets = 65

// Histogram accumulates a distribution in fixed log2 buckets. Observing
// costs two atomic adds plus one bucket add; there is no locking and no
// allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records v. Negative observations clamp to zero (durations and
// sizes, the intended inputs, are never negative).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistBucket is one non-empty log2 bucket: Bit is the bits.Len64 index
// (values in [2^(Bit-1), 2^Bit); Bit 0 is exactly zero).
type HistBucket struct {
	Bit   int   `json:"bit"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram. P50/P90/P99
// are the estimated quantiles (see Quantile), precomputed at snapshot
// time so JSON consumers — /metrics dashboards, the flight recorder —
// get latency percentiles without re-deriving bucket math.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
	P50     float64      `json:"p50,omitempty"`
	P90     float64      `json:"p90,omitempty"`
	P99     float64      `json:"p99,omitempty"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q'th quantile (q in [0,1], clamped) from the
// log2 buckets: it finds the bucket holding the q·Count'th observation
// and interpolates linearly within that bucket's value range
// [2^(Bit-1), 2^Bit). Bucket 0 (exact zeros) needs no interpolation.
// An empty histogram estimates 0. The estimate is exact when every
// observation in the target bucket sits at the interpolated point and
// never off by more than the bucket width — the usual log-bucket
// trade: cheap atomic observation, ~2× worst-case quantile error.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for _, b := range s.Buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank {
			if b.Bit == 0 {
				return 0
			}
			lo := float64(int64(1) << (b.Bit - 1))
			frac := (rank - float64(prev)) / float64(b.Count)
			return lo + frac*lo
		}
	}
	// rank == Count and float rounding skipped the last bucket: return
	// the last bucket's upper bound.
	if n := len(s.Buckets); n > 0 {
		if bit := s.Buckets[n-1].Bit; bit > 0 {
			return 2 * float64(int64(1)<<(bit-1))
		}
	}
	return 0
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			out.Buckets = append(out.Buckets, HistBucket{Bit: i, Count: n})
		}
	}
	out.P50 = out.Quantile(0.50)
	out.P90 = out.Quantile(0.90)
	out.P99 = out.Quantile(0.99)
	return out
}

// Registry is a name → metric store. Get-or-create takes a mutex, so
// callers hold the returned pointer (typically in a package-level var)
// and pay only the atomic op on the hot path. The zero value is ready.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry: driver's pool/cache/run counters
// and exp's pool occupancy land here, and `brbench -metrics` prints it.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Values observed concurrently with the
// snapshot may or may not be included (each metric is read atomically).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Format renders the snapshot as a sorted human-readable table (the
// `brbench -metrics` output).
func (s Snapshot) Format() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-32s %15d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-32s %15d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "histograms:\n")
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-32s count=%-10d sum=%-15d mean=%.1f\n",
				name, h.Count, h.Sum, h.Mean())
		}
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
