package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// bits.Len64 buckets: 0 → bucket 0, 1 → 1, [2,3] → 2, [4,7] → 3 ...
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Sum != 25 { // negative clamped to 0
		t.Fatalf("sum = %d, want 25", s.Sum)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1}
	for _, b := range s.Buckets {
		if want[b.Bit] != b.Count {
			t.Fatalf("bucket %d = %d, want %d", b.Bit, b.Count, want[b.Bit])
		}
		delete(want, b.Bit)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}
	if m := s.Mean(); m != 25.0/8 {
		t.Fatalf("mean = %v", m)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["n"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestSnapshotFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("workers").Set(4)
	r.Histogram("lat").Observe(100)
	out := r.Snapshot().Format()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "z.last") ||
		!strings.Contains(out, "workers") || !strings.Contains(out, "lat") {
		t.Fatalf("format missing entries:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
