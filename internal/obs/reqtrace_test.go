package obs

import (
	"context"
	"testing"
)

func TestReqTraceSpanTree(t *testing.T) {
	rt := NewReqTrace("req-1")
	root := rt.Begin("request", "serve", 0)
	ctx := ContextWithSpan(ContextWithReqTrace(context.Background(), rt), root.ID())

	child, cctx := StartSpan(ctx, "exec", "serve")
	grand, _ := StartSpan(cctx, "compile", "driver")
	grand.SetArg("cached", "false")
	grand.End()
	child.End()
	root.End()

	spans := rt.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["exec"].Parent != byName["request"].ID {
		t.Errorf("exec parent = %d, want root %d", byName["exec"].Parent, byName["request"].ID)
	}
	if byName["compile"].Parent != byName["exec"].ID {
		t.Errorf("compile parent = %d, want exec %d", byName["compile"].Parent, byName["exec"].ID)
	}
	if byName["compile"].Args["cached"] != "false" {
		t.Errorf("compile span lost its arg: %+v", byName["compile"].Args)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	sp, ctx := StartSpan(context.Background(), "compile", "driver")
	if sp != nil {
		t.Fatalf("StartSpan without a trace returned a live span")
	}
	// The nil span's methods must no-op, so instrumented call sites need
	// no conditionals.
	sp.SetArg("k", "v")
	sp.End()
	if SpanFromContext(ctx) != 0 {
		t.Errorf("untraced context gained a span ID")
	}
}

func TestNilReqTrace(t *testing.T) {
	var rt *ReqTrace
	sp := rt.Begin("x", "y", 0)
	if sp != nil {
		t.Fatalf("nil trace handed out a span")
	}
	sp.End()
	if rt.Spans() != nil {
		t.Errorf("nil trace has spans")
	}
}
