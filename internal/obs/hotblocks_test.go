package obs_test

// External test package: exercising HotBlocks on real compiled workloads
// needs driver, which imports obs.

import (
	"context"
	"strings"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/emu"
	"branchreg/internal/isa"
	"branchreg/internal/obs"
	"branchreg/internal/workloads"
)

func profiledRun(t *testing.T, name string, kind isa.Kind) (*isa.Program, *emu.BlockProfile, *driver.Result) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	p, err := driver.Compile(context.Background(), w.FullSource(), kind, driver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof := emu.NewBlockProfile(len(p.Text))
	res, err := driver.Exec(context.Background(), driver.Request{Program: p, Input: w.Input, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	return p, prof, res
}

func TestHotBlocksSieve(t *testing.T) {
	for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
		p, prof, res := profiledRun(t, "sieve", kind)
		blocks := obs.HotBlocks(p, prof, 0)
		if len(blocks) == 0 {
			t.Fatal("no blocks")
		}

		var dyn, taken, notTaken, cost int64
		for i, b := range blocks {
			if b.Count <= 0 || b.Len <= 0 {
				t.Fatalf("block %d empty: %+v", i, b)
			}
			if b.DynInsts != b.Count*int64(b.Len) {
				t.Fatalf("block %d dyn insts inconsistent: %+v", i, b)
			}
			if i > 0 && blocks[i-1].DynInsts < b.DynInsts {
				t.Fatalf("blocks not sorted: %d before %d", blocks[i-1].DynInsts, b.DynInsts)
			}
			dyn += b.DynInsts
			taken += b.Taken
			notTaken += b.NotTaken
			cost += b.CostCycles
		}
		st := res.Stats
		if dyn != st.Instructions {
			t.Fatalf("%v: block insts %d != run insts %d", kind, dyn, st.Instructions)
		}
		// Cost attribution sums to the §7 model's branch-cost component.
		if kind == isa.Baseline {
			transfers := st.UncondJumps + st.CondBranches + st.Calls + st.Returns
			if cost != transfers {
				t.Fatalf("baseline cost %d != transfers×1 = %d", cost, transfers)
			}
		} else {
			var want int64
			for d := 0; d < emu.MinPrefetchDist; d++ {
				want += int64(emu.MinPrefetchDist-d) * st.DistHist[d]
			}
			if cost != want {
				t.Fatalf("BRM cost %d != prefetch penalty %d", cost, want)
			}
		}

		// The paper's loop-dominance claim: sieve's inner loop concentrates
		// execution, so the hottest block alone carries a large share.
		if blocks[0].PctInsts < 20 {
			t.Fatalf("%v: hottest block only %.1f%% of insts", kind, blocks[0].PctInsts)
		}

		top := obs.HotBlocks(p, prof, 3)
		if len(top) != 3 {
			t.Fatalf("top-3 returned %d", len(top))
		}
		out := obs.FormatHotBlocks("sieve", top, st.Instructions)
		if !strings.Contains(out, "sieve") || !strings.Contains(out, "dyn insts") {
			t.Fatalf("format output wrong:\n%s", out)
		}
	}
}

func TestHotBlocksNilSafe(t *testing.T) {
	if obs.HotBlocks(nil, nil, 5) != nil {
		t.Fatal("nil inputs must yield nil")
	}
	p, prof, _ := profiledRun(t, "wc", isa.Baseline)
	if obs.HotBlocks(p, emu.NewBlockProfile(len(p.Text)+1), 5) != nil {
		t.Fatal("size mismatch must yield nil")
	}
	_ = prof
}
