package isa

import "fmt"

// This file implements 32-bit instruction encodings for both machines,
// following the format families of the paper's Figures 10 (baseline) and 11
// (branch-register machine). The encodings exist to demonstrate that the
// designed instruction sets actually fit in 32-bit words with the stated
// field widths — the emulator executes decoded Instr values, and
// encode/decode round-trip is enforced by tests.
//
// Baseline formats (op = bits [31:26]):
//
//	branch     op | cond(4) | disp22 (signed word displacement)
//	call       op | disp26  (signed word displacement)
//	jr/jalr    op | rs1(5) | 0...
//	sethi      op | rd(5) | imm21 (rd = imm << 12)
//	alu/mem    op | rd(5) | rs1(5) | i(1) | imm15 (signed) or 0...rs2(5)
//	cmp        op | cond(4) | rs1(5) | i(1) | imm15 or 0...rs2(5)
//	trap       op | imm26
//
// BRM formats (op = bits [31:26], br = bits [2:0] in every instruction):
//
//	alu/mem    op | rd(4) | rs1(4) | i(1) | imm12 (signed) or 0...rs2(4) | br
//	sethi      op | rd(4) | imm19 | br
//	brcalc pc  op | brd(3) | disp18 (signed words) | 0(2) | br
//	brcalc lo  op | brd(3) | rs1(4) | imm12 | 0... | br
//	brld       op | brd(3) | rs1(4) | imm12 | 0... | br
//	cmpbr      op | cond(4) | bsrc(3) | rs1(4) | i(1) | imm11 or rs2(4) | br
//	movbr      op | brd(3) | bsrc(3) or rd/rs1(4) | br
//	trap       op | imm23 | br

// enc accumulates instruction fields, capturing the first operand-range
// or alignment violation as an error instead of panicking: a codegen bug
// must fail that one compilation, not the process. The zero value is
// ready to use.
type enc struct {
	w   uint32
	err error
}

// failf records the first failure; later fields become no-ops.
func (e *enc) failf(format string, args ...interface{}) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// field packs v into w bits at offset off, recording an error if it does
// not fit.
func (e *enc) field(v int32, w, off uint, signed bool, what string) {
	if signed {
		if !FitsSigned(v, w) {
			e.failf("isa: %s %d does not fit %d signed bits", what, v, w)
			return
		}
	} else if v < 0 || uint32(v) >= 1<<w {
		e.failf("isa: %s %d does not fit %d unsigned bits", what, v, w)
		return
	}
	e.w |= (uint32(v) & (1<<w - 1)) << off
}

// wordDisp converts a byte displacement to a word displacement, recording
// an error on misalignment.
func (e *enc) wordDisp(byteDisp int32) int32 {
	if byteDisp%WordSize != 0 {
		e.failf("isa: misaligned displacement %d", byteDisp)
		return 0
	}
	return byteDisp / WordSize
}

func extract(word uint32, w, off uint, signed bool) int32 {
	v := int32((word >> off) & (1<<w - 1))
	if signed && v >= 1<<(w-1) {
		v -= 1 << w
	}
	return v
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Encode packs the instruction into a 32-bit word for machine k.
// Instructions must be linked (no unresolved symbolic targets).
// Operand-range and alignment violations come back as errors — the
// encode boundary is where a codegen bug must surface without taking
// down the process.
func Encode(in Instr, k Kind) (uint32, error) {
	if in.Target != "" || in.DataTarget != "" {
		return 0, fmt.Errorf("isa: cannot encode unlinked instruction (target %q%q)", in.Target, in.DataTarget)
	}
	var e enc
	if k == Baseline {
		encodeBase(&e, in)
	} else {
		encodeBRM(&e, in)
	}
	if e.err != nil {
		return 0, e.err
	}
	return e.w, nil
}

func encodeBase(e *enc, in Instr) {
	if in.Op.IsBRMOnly() {
		e.failf("isa: %v is not a baseline op", in.Op)
		return
	}
	e.field(int32(in.Op), 6, 26, false, "opcode")
	checkReg := func(r int, what string) {
		if r < 0 || r >= BaselineDataRegs {
			e.failf("isa: baseline %s register %d out of range", what, r)
		}
	}
	switch in.Op {
	case OpNop:
	case OpB:
		e.field(int32(in.Cond), 4, 22, false, "cond")
		e.field(e.wordDisp(in.Imm), 22, 0, true, "branch disp")
	case OpCall:
		e.field(e.wordDisp(in.Imm), 26, 0, true, "call disp")
	case OpJr, OpJalr:
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rs1), 5, 21, false, "rs1")
	case OpSethi:
		checkReg(in.Rd, "rd")
		e.field(int32(in.Rd), 5, 21, false, "rd")
		e.field(in.Imm, 21, 0, false, "sethi imm")
	case OpCmp, OpFcmp:
		e.field(int32(in.Cond), 4, 22, false, "cond")
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rs1), 5, 17, false, "rs1")
		e.field(b2i(in.UseImm), 1, 16, false, "i")
		if in.UseImm {
			e.field(in.Imm, 15, 0, true, "cmp imm")
		} else {
			checkReg(in.Rs2, "rs2")
			e.field(int32(in.Rs2), 5, 0, false, "rs2")
		}
	case OpSet, OpFSet:
		e.field(int32(in.Cond), 4, 22, false, "cond")
		checkReg(in.Rd, "rd")
		e.field(int32(in.Rd), 5, 17, false, "rd")
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rs1), 5, 12, false, "rs1")
		e.field(b2i(in.UseImm), 1, 11, false, "i")
		if in.UseImm {
			e.field(in.Imm, 11, 0, true, "set imm")
		} else {
			checkReg(in.Rs2, "rs2")
			e.field(int32(in.Rs2), 5, 0, false, "rs2")
		}
	case OpTrap:
		e.field(in.Imm, 26, 0, false, "trap code")
	default: // ALU, memory, FP
		rd := in.Rd
		if rd < 0 {
			rd = 0
		}
		checkReg(rd, "rd")
		e.field(int32(rd), 5, 21, false, "rd")
		rs1 := in.Rs1
		if rs1 < 0 {
			rs1 = 0
		}
		checkReg(rs1, "rs1")
		e.field(int32(rs1), 5, 16, false, "rs1")
		e.field(b2i(in.UseImm), 1, 15, false, "i")
		if in.UseImm {
			e.field(in.Imm, 15, 0, true, "imm")
		} else {
			rs2 := in.Rs2
			if rs2 < 0 {
				rs2 = 0
			}
			checkReg(rs2, "rs2")
			e.field(int32(rs2), 5, 0, false, "rs2")
		}
	}
}

func encodeBRM(e *enc, in Instr) {
	if in.Op.IsBaselineBranch() || in.Op == OpCmp || in.Op == OpFcmp {
		e.failf("isa: %v is not a BRM op", in.Op)
		return
	}
	e.field(int32(in.Op), 6, 26, false, "opcode")
	e.field(int32(in.BR), 3, 0, false, "br")
	checkReg := func(r int, what string) {
		if r < 0 || r >= BRMDataRegs {
			e.failf("isa: BRM %s register %d out of range", what, r)
		}
	}
	checkBr := func(b int, what string) {
		if b < 0 || b >= BRMBranchRegs {
			e.failf("isa: BRM %s branch register %d out of range", what, b)
		}
	}
	switch in.Op {
	case OpNop:
	case OpSethi:
		checkReg(in.Rd, "rd")
		e.field(int32(in.Rd), 4, 22, false, "rd")
		e.field(in.Imm, 19, 3, false, "sethi imm")
	case OpBrCalc:
		checkBr(in.Rd, "brd")
		e.field(int32(in.Rd), 3, 23, false, "brd")
		if in.Rs1 < 0 { // PC-relative
			e.field(1, 1, 22, false, "pcrel")
			e.field(e.wordDisp(in.Imm), 18, 4, true, "brcalc disp")
		} else {
			checkReg(in.Rs1, "rs1")
			e.field(int32(in.Rs1), 4, 18, false, "rs1")
			e.field(in.Imm, 12, 4, true, "brcalc lo")
		}
	case OpBrLd:
		checkBr(in.Rd, "brd")
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rd), 3, 23, false, "brd")
		e.field(int32(in.Rs1), 4, 18, false, "rs1")
		e.field(in.Imm, 12, 4, true, "brld off")
	case OpCmpBr, OpFCmpBr:
		e.field(int32(in.Cond), 4, 22, false, "cond")
		checkBr(in.BSrc, "bsrc")
		e.field(int32(in.BSrc), 3, 19, false, "bsrc")
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rs1), 4, 15, false, "rs1")
		e.field(b2i(in.UseImm), 1, 14, false, "i")
		if in.UseImm {
			e.field(in.Imm, 11, 3, true, "cmp imm")
		} else {
			checkReg(in.Rs2, "rs2")
			e.field(int32(in.Rs2), 4, 3, false, "rs2")
		}
	case OpSet, OpFSet:
		e.field(int32(in.Cond), 4, 22, false, "cond")
		checkReg(in.Rd, "rd")
		e.field(int32(in.Rd), 4, 18, false, "rd")
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rs1), 4, 14, false, "rs1")
		e.field(b2i(in.UseImm), 1, 13, false, "i")
		if in.UseImm {
			e.field(in.Imm, 10, 3, true, "set imm")
		} else {
			checkReg(in.Rs2, "rs2")
			e.field(int32(in.Rs2), 4, 3, false, "rs2")
		}
	case OpMovBr:
		checkBr(in.Rd, "brd")
		checkBr(in.BSrc, "bsrc")
		e.field(int32(in.Rd), 3, 23, false, "brd")
		e.field(int32(in.BSrc), 3, 20, false, "bsrc")
	case OpMovRB:
		checkReg(in.Rd, "rd")
		checkBr(in.BSrc, "bsrc")
		e.field(int32(in.Rd), 4, 22, false, "rd")
		e.field(int32(in.BSrc), 3, 19, false, "bsrc")
	case OpMovBR:
		checkBr(in.Rd, "brd")
		checkReg(in.Rs1, "rs1")
		e.field(int32(in.Rd), 3, 23, false, "brd")
		e.field(int32(in.Rs1), 4, 19, false, "rs1")
	case OpTrap:
		e.field(in.Imm, 23, 3, false, "trap code")
	default: // ALU, memory, FP
		rd := in.Rd
		if rd < 0 {
			rd = 0
		}
		checkReg(rd, "rd")
		e.field(int32(rd), 4, 22, false, "rd")
		rs1 := in.Rs1
		if rs1 < 0 {
			rs1 = 0
		}
		checkReg(rs1, "rs1")
		e.field(int32(rs1), 4, 18, false, "rs1")
		e.field(b2i(in.UseImm), 1, 17, false, "i")
		if in.UseImm {
			e.field(in.Imm, 12, 3, true, "imm")
		} else {
			rs2 := in.Rs2
			if rs2 < 0 {
				rs2 = 0
			}
			checkReg(rs2, "rs2")
			e.field(int32(rs2), 4, 3, false, "rs2")
		}
	}
}

// Decode unpacks a 32-bit word encoded for machine k. Decode is the inverse
// of Encode for every encodable instruction.
func Decode(word uint32, k Kind) (Instr, error) {
	op := Op(extract(word, 6, 26, false))
	if op < 0 || op >= NumOps {
		return Instr{}, fmt.Errorf("isa: bad opcode %d", op)
	}
	if k == Baseline {
		return decodeBase(word, op), nil
	}
	return decodeBRM(word, op), nil
}

func decodeBase(w uint32, op Op) Instr {
	in := Instr{Op: op, Rs1: -1, Rs2: -1}
	switch op {
	case OpNop:
	case OpB:
		in.Cond = Cond(extract(w, 4, 22, false))
		in.Imm = extract(w, 22, 0, true) * WordSize
		in.UseImm = true
	case OpCall:
		in.Imm = extract(w, 26, 0, true) * WordSize
		in.UseImm = true
	case OpJr, OpJalr:
		in.Rs1 = int(extract(w, 5, 21, false))
	case OpSethi:
		in.Rd = int(extract(w, 5, 21, false))
		in.Imm = extract(w, 21, 0, false)
		in.UseImm = true
	case OpCmp, OpFcmp:
		in.Cond = Cond(extract(w, 4, 22, false))
		in.Rs1 = int(extract(w, 5, 17, false))
		in.UseImm = extract(w, 1, 16, false) == 1
		if in.UseImm {
			in.Imm = extract(w, 15, 0, true)
		} else {
			in.Rs2 = int(extract(w, 5, 0, false))
		}
	case OpSet, OpFSet:
		in.Cond = Cond(extract(w, 4, 22, false))
		in.Rd = int(extract(w, 5, 17, false))
		in.Rs1 = int(extract(w, 5, 12, false))
		in.UseImm = extract(w, 1, 11, false) == 1
		if in.UseImm {
			in.Imm = extract(w, 11, 0, true)
		} else {
			in.Rs2 = int(extract(w, 5, 0, false))
		}
	case OpTrap:
		in.Imm = extract(w, 26, 0, false)
		in.UseImm = true
	default:
		in.Rd = int(extract(w, 5, 21, false))
		in.Rs1 = int(extract(w, 5, 16, false))
		in.UseImm = extract(w, 1, 15, false) == 1
		if in.UseImm {
			in.Imm = extract(w, 15, 0, true)
		} else {
			in.Rs2 = int(extract(w, 5, 0, false))
		}
	}
	return in
}

func decodeBRM(w uint32, op Op) Instr {
	in := Instr{Op: op, Rs1: -1, Rs2: -1}
	in.BR = int(extract(w, 3, 0, false))
	switch op {
	case OpNop:
	case OpSethi:
		in.Rd = int(extract(w, 4, 22, false))
		in.Imm = extract(w, 19, 3, false)
		in.UseImm = true
	case OpBrCalc:
		in.Rd = int(extract(w, 3, 23, false))
		if extract(w, 1, 22, false) == 1 {
			in.Rs1 = -1
			in.Imm = extract(w, 18, 4, true) * WordSize
		} else {
			in.Rs1 = int(extract(w, 4, 18, false))
			in.Imm = extract(w, 12, 4, true)
		}
		in.UseImm = true
	case OpBrLd:
		in.Rd = int(extract(w, 3, 23, false))
		in.Rs1 = int(extract(w, 4, 18, false))
		in.Imm = extract(w, 12, 4, true)
		in.UseImm = true
	case OpCmpBr, OpFCmpBr:
		in.Cond = Cond(extract(w, 4, 22, false))
		in.BSrc = int(extract(w, 3, 19, false))
		in.Rs1 = int(extract(w, 4, 15, false))
		in.UseImm = extract(w, 1, 14, false) == 1
		if in.UseImm {
			in.Imm = extract(w, 11, 3, true)
		} else {
			in.Rs2 = int(extract(w, 4, 3, false))
		}
	case OpSet, OpFSet:
		in.Cond = Cond(extract(w, 4, 22, false))
		in.Rd = int(extract(w, 4, 18, false))
		in.Rs1 = int(extract(w, 4, 14, false))
		in.UseImm = extract(w, 1, 13, false) == 1
		if in.UseImm {
			in.Imm = extract(w, 10, 3, true)
		} else {
			in.Rs2 = int(extract(w, 4, 3, false))
		}
	case OpMovBr:
		in.Rd = int(extract(w, 3, 23, false))
		in.BSrc = int(extract(w, 3, 20, false))
	case OpMovRB:
		in.Rd = int(extract(w, 4, 22, false))
		in.BSrc = int(extract(w, 3, 19, false))
	case OpMovBR:
		in.Rd = int(extract(w, 3, 23, false))
		in.Rs1 = int(extract(w, 4, 19, false))
	case OpTrap:
		in.Imm = extract(w, 23, 3, false)
		in.UseImm = true
	default:
		in.Rd = int(extract(w, 4, 22, false))
		in.Rs1 = int(extract(w, 4, 18, false))
		in.UseImm = extract(w, 1, 17, false) == 1
		if in.UseImm {
			in.Imm = extract(w, 12, 3, true)
		} else {
			in.Rs2 = int(extract(w, 4, 3, false))
		}
	}
	return in
}
