package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Baseline.String() != "baseline" || BranchReg.String() != "branchreg" {
		t.Fatalf("unexpected kind strings: %v %v", Baseline, BranchReg)
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestCondNegate(t *testing.T) {
	pairs := map[Cond]Cond{
		CondEQ: CondNE, CondLT: CondGE, CondLE: CondGT,
	}
	for c, n := range pairs {
		if c.Negate() != n || n.Negate() != c {
			t.Errorf("negate(%v) = %v, want %v", c, c.Negate(), n)
		}
	}
	if CondAlways.Negate() != CondAlways {
		t.Error("CondAlways negation should be identity")
	}
}

func TestCondHoldsInt(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int32
		want bool
	}{
		{CondEQ, 3, 3, true}, {CondEQ, 3, 4, false},
		{CondNE, 3, 4, true}, {CondNE, 3, 3, false},
		{CondLT, -1, 0, true}, {CondLT, 0, 0, false},
		{CondLE, 0, 0, true}, {CondLE, 1, 0, false},
		{CondGT, 1, 0, true}, {CondGT, 0, 0, false},
		{CondGE, 0, 0, true}, {CondGE, -1, 0, false},
		{CondAlways, 0, 99, true},
	}
	for _, tc := range cases {
		if got := tc.c.HoldsInt(tc.a, tc.b); got != tc.want {
			t.Errorf("%d %v %d = %v, want %v", tc.a, tc.c, tc.b, got, tc.want)
		}
	}
}

// Negation must be the logical complement for every comparable pair.
func TestCondNegateComplement(t *testing.T) {
	f := func(a, b int32, ci uint8) bool {
		c := Cond(ci%6) + CondEQ
		return c.HoldsInt(a, b) != c.Negate().HoldsInt(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondHoldsFloat(t *testing.T) {
	if !CondLT.HoldsFloat(1.5, 2.5) || CondGE.HoldsFloat(1.5, 2.5) {
		t.Fatal("float comparisons wrong")
	}
	if !CondEQ.HoldsFloat(2.0, 2.0) {
		t.Fatal("float equality wrong")
	}
}

func TestSplitAddr(t *testing.T) {
	f := func(v int32) bool {
		hi, lo := SplitAddr(v)
		if lo < -2048 || lo > 2047 {
			return false
		}
		return hi<<12+lo == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, v := range []int32{0, 1, 0x7FF, 0x800, 0xFFF, 0x1000, DataBase, TextBase, -1} {
		hi, lo := SplitAddr(v)
		if hi<<12+lo != v {
			t.Errorf("SplitAddr(%#x) = (%#x,%d): does not reconstruct", v, hi, lo)
		}
	}
}

func TestFitsSigned(t *testing.T) {
	if !FitsSigned(2047, 12) || FitsSigned(2048, 12) {
		t.Fatal("12-bit upper bound wrong")
	}
	if !FitsSigned(-2048, 12) || FitsSigned(-2049, 12) {
		t.Fatal("12-bit lower bound wrong")
	}
}

// randomInstr generates a random encodable instruction for machine k.
func randomInstr(r *rand.Rand, k Kind) Instr {
	regs := BaselineDataRegs
	if k == BranchReg {
		regs = BRMDataRegs
	}
	reg := func() int { return r.Intn(regs) }
	br := func() int { return r.Intn(BRMBranchRegs) }
	cond := func() Cond { return Cond(r.Intn(6)) + CondEQ }
	simm := func(bits uint) int32 {
		span := int32(1) << (bits - 1)
		return r.Int31n(2*span) - span
	}
	var in Instr
	if k == BranchReg {
		in.BR = br()
	}
	var ops []Op
	if k == Baseline {
		ops = []Op{OpNop, OpAdd, OpSub, OpMul, OpAnd, OpSll, OpSethi, OpLw,
			OpLb, OpSw, OpSb, OpLf, OpSf, OpFadd, OpFneg, OpCvtif, OpTrap,
			OpCmp, OpFcmp, OpB, OpCall, OpJr, OpJalr}
	} else {
		ops = []Op{OpNop, OpAdd, OpSub, OpMul, OpAnd, OpSll, OpSethi, OpLw,
			OpLb, OpSw, OpSb, OpLf, OpSf, OpFadd, OpFneg, OpCvtif, OpTrap,
			OpBrCalc, OpBrLd, OpCmpBr, OpFCmpBr, OpMovBr, OpMovRB, OpMovBR}
	}
	in.Op = ops[r.Intn(len(ops))]
	in.Rs1, in.Rs2 = -1, -1
	switch in.Op {
	case OpNop:
	case OpB:
		in.Cond = cond()
		in.Imm = simm(20) * WordSize
		in.UseImm = true
	case OpCall:
		in.Imm = simm(24) * WordSize
		in.UseImm = true
	case OpJr, OpJalr:
		in.Rs1 = reg()
	case OpSethi:
		in.Rd = reg()
		in.Imm = r.Int31n(1 << 19)
		in.UseImm = true
	case OpCmp, OpFcmp:
		in.Cond = cond()
		in.Rs1 = reg()
		if in.Op == OpCmp && r.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = simm(CmpImmBits(k))
		} else {
			in.Rs2 = reg()
		}
	case OpTrap:
		in.Imm = int32(r.Intn(4))
		in.UseImm = true
	case OpBrCalc:
		in.Rd = br()
		if r.Intn(2) == 0 {
			in.Rs1 = -1
			in.Imm = simm(16) * WordSize
		} else {
			in.Rs1 = reg()
			in.Imm = simm(12)
		}
		in.UseImm = true
	case OpBrLd:
		in.Rd = br()
		in.Rs1 = reg()
		in.Imm = simm(12)
		in.UseImm = true
	case OpCmpBr, OpFCmpBr:
		in.Cond = cond()
		in.BSrc = br()
		in.Rs1 = reg()
		if in.Op == OpCmpBr && r.Intn(2) == 0 {
			in.UseImm = true
			in.Imm = simm(11)
		} else {
			in.Rs2 = reg()
		}
	case OpMovBr:
		in.Rd = br()
		in.BSrc = br()
	case OpMovRB:
		in.Rd = reg()
		in.BSrc = br()
	case OpMovBR:
		in.Rd = br()
		in.Rs1 = reg()
	default: // ALU / mem / FP three-address
		in.Rd = reg()
		in.Rs1 = reg()
		if r.Intn(2) == 0 && !in.Op.IsFloat() {
			in.UseImm = true
			in.Imm = simm(ALUImmBits(k))
		} else {
			in.Rs2 = reg()
		}
	}
	return in
}

// canonical clears fields Decode cannot recover (it reports them as the
// defaults it uses), so encode→decode comparisons are meaningful.
func canonical(in Instr) Instr {
	in.Target, in.DataTarget, in.Comment = "", "", ""
	in.Lo = false
	switch in.Op {
	case OpNop, OpTrap:
		in.Rd, in.Rs1, in.Rs2, in.Cond, in.BSrc = 0, -1, -1, CondNone, 0
		if in.Op == OpNop {
			in.Imm, in.UseImm = 0, false
		} else {
			in.UseImm = true
		}
	case OpB, OpCall:
		in.Rd, in.Rs1, in.Rs2, in.BSrc = 0, -1, -1, 0
		in.UseImm = true
		if in.Op == OpCall {
			in.Cond = CondNone
		}
	case OpJr, OpJalr:
		in.Rd, in.Rs2, in.Imm, in.UseImm, in.Cond, in.BSrc = 0, -1, 0, false, CondNone, 0
	case OpSethi:
		in.Rs1, in.Rs2, in.Cond, in.BSrc = -1, -1, CondNone, 0
		in.UseImm = true
	case OpMovBr:
		in.Rs1, in.Rs2, in.Imm, in.UseImm, in.Cond = -1, -1, 0, false, CondNone
	case OpMovRB:
		in.Rs1, in.Rs2, in.Imm, in.UseImm, in.Cond = -1, -1, 0, false, CondNone
	case OpMovBR:
		in.Rs2, in.Imm, in.UseImm, in.Cond, in.BSrc = -1, 0, false, CondNone, 0
	case OpBrCalc, OpBrLd:
		in.Cond, in.BSrc = CondNone, 0
		in.UseImm = true
		if !in.UseImm {
			in.Rs2 = -1
		}
		in.Rs2 = -1
	case OpCmp, OpFcmp, OpCmpBr, OpFCmpBr:
		in.Rd = 0
		if in.Op == OpCmp || in.Op == OpFcmp {
			in.BSrc = 0
		}
	}
	if in.UseImm {
		in.Rs2 = -1
	} else {
		in.Imm = 0
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, k := range []Kind{Baseline, BranchReg} {
		for i := 0; i < 5000; i++ {
			in := randomInstr(r, k)
			w, err := Encode(in, k)
			if err != nil {
				t.Fatalf("%v: encode %+v: %v", k, in, err)
			}
			out, err := Decode(w, k)
			if err != nil {
				t.Fatalf("%v: decode %#x: %v", k, w, err)
			}
			want, got := canonical(in), canonical(out)
			if want != got {
				t.Fatalf("%v round trip mismatch:\n in  %+v\n out %+v", k, want, got)
			}
		}
	}
}

func TestEncodeRejectsWrongMachine(t *testing.T) {
	if _, err := Encode(Instr{Op: OpBrCalc, Rs1: -1, UseImm: true}, Baseline); err == nil {
		t.Error("baseline must reject brcalc")
	}
	if _, err := Encode(Instr{Op: OpB, Cond: CondAlways, UseImm: true}, BranchReg); err == nil {
		t.Error("BRM must reject branch instructions")
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	// BRM has only 16 data registers; r20 must not encode.
	if _, err := Encode(Instr{Op: OpAdd, Rd: 20, Rs1: 1, Rs2: 2}, BranchReg); err == nil {
		t.Error("BRM must reject r20")
	}
	// Baseline immediate field is 15 bits signed.
	if _, err := Encode(Instr{Op: OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 1 << 20}, Baseline); err == nil {
		t.Error("baseline must reject oversized immediate")
	}
	// BRM immediate field is 12 bits signed.
	if _, err := Encode(Instr{Op: OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 5000}, BranchReg); err == nil {
		t.Error("BRM must reject 13-bit immediate")
	}
	if _, err := Encode(Instr{Op: OpB, Target: "L1"}, Baseline); err == nil {
		t.Error("unlinked instruction must not encode")
	}
}

func TestEncodeRejectsMisalignedDisp(t *testing.T) {
	// Branch and call displacements are word-granular; a byte-misaligned
	// displacement is a codegen bug and must come back as an error.
	if _, err := Encode(Instr{Op: OpB, Cond: CondAlways, UseImm: true, Imm: 6}, Baseline); err == nil {
		t.Error("baseline must reject misaligned branch displacement")
	}
	if _, err := Encode(Instr{Op: OpCall, UseImm: true, Imm: 10}, Baseline); err == nil {
		t.Error("baseline must reject misaligned call displacement")
	}
	if _, err := Encode(Instr{Op: OpBrCalc, Rd: 1, Rs1: -1, UseImm: true, Imm: 14}, BranchReg); err == nil {
		t.Error("BRM must reject misaligned brcalc displacement")
	}
}

// TestEncodeNeverPanics feeds adversarial operand garbage straight into
// Encode: every violation must surface as a returned error at the encode
// boundary — a panic here would take down a whole experiment process for
// one bad compilation.
func TestEncodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	extremes := []int32{-1 << 31, -5000, -33, -1, 0, 1, 2, 3, 31, 33, 4999, 1<<31 - 1}
	pick := func() int32 {
		if r.Intn(2) == 0 {
			return extremes[r.Intn(len(extremes))]
		}
		return int32(r.Uint32())
	}
	for i := 0; i < 20000; i++ {
		in := Instr{
			Op:     Op(r.Intn(64)),
			Cond:   Cond(r.Intn(16)),
			Rd:     int(pick()),
			Rs1:    int(pick()),
			Rs2:    int(pick()),
			BR:     int(pick()),
			BSrc:   int(pick()),
			Imm:    pick(),
			UseImm: r.Intn(2) == 0,
			Lo:     r.Intn(2) == 0,
		}
		for _, k := range []Kind{Baseline, BranchReg} {
			// Any panic fails the test; errors are the contract.
			_, _ = Encode(in, k)
		}
	}
}

func TestInstrPredicates(t *testing.T) {
	j := Instr{Op: OpB, Cond: CondAlways}
	if !j.IsTransfer(Baseline) || j.IsTransfer(BranchReg) {
		t.Error("OpB transfer classification wrong")
	}
	add := Instr{Op: OpAdd, BR: 3}
	if add.IsTransfer(Baseline) || !add.IsTransfer(BranchReg) {
		t.Error("BR-field transfer classification wrong")
	}
	cmp, addi := Instr{Op: OpCmp}, Instr{Op: OpAdd}
	if !cmp.SetsCC() || addi.SetsCC() {
		t.Error("SetsCC wrong")
	}
	blt, ba := Instr{Op: OpB, Cond: CondLT}, Instr{Op: OpB, Cond: CondAlways}
	if !blt.ReadsCC() || ba.ReadsCC() {
		t.Error("ReadsCC wrong")
	}
	if !OpLw.IsLoad() || !OpBrLd.IsLoad() || OpSw.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !OpSb.IsStore() || OpLb.IsStore() {
		t.Error("IsStore wrong")
	}
	if !OpFadd.IsFloat() || OpAdd.IsFloat() {
		t.Error("IsFloat wrong")
	}
}

func TestRTLNotation(t *testing.T) {
	cases := []struct {
		in   Instr
		k    Kind
		want string
	}{
		{Instr{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2}, Baseline, "r[3]=r[1]+r[2]"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 1}, Baseline, "r[1]=r[1]+1"},
		{Instr{Op: OpCmpBr, Rs1: 5, UseImm: true, Imm: 0, Cond: CondLT, BSrc: 2}, BranchReg,
			"b[7]=r[5]<0->b[2]|b[0]"},
		{Instr{Op: OpNop, BR: 7}, BranchReg, "NL=NL; b[0]=b[7]"},
		{Instr{Op: OpB, Cond: CondEQ, Target: "L14"}, Baseline, "PC=CC==0->L14"},
		{Instr{Op: OpMovBr, Rd: 1, BSrc: 7}, BranchReg, "b[1]=b[7]"},
	}
	for _, tc := range cases {
		if got := tc.in.RTL(tc.k); got != tc.want {
			t.Errorf("RTL = %q, want %q", got, tc.want)
		}
	}
}

func TestLinkResolvesLabelsAndData(t *testing.T) {
	f := NewFunction("main", Baseline)
	f.Emit(Instr{Op: OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 7})
	f.Bind("L1")
	f.Emit(Instr{Op: OpB, Cond: CondAlways, Target: "L1"})
	f.Emit(Instr{Op: OpNop}) // delay slot
	f.Emit(Instr{Op: OpTrap, Imm: TrapExit, UseImm: true})

	g := NewFunction("helper", Baseline)
	g.Emit(Instr{Op: OpJr, Rs1: RABase})
	g.Emit(Instr{Op: OpNop})

	p := &Program{Kind: Baseline, Funcs: []*Function{f, g},
		Data: []*DataItem{
			{Label: "msg", Kind: DataBytes, Bytes: []byte("hi\x00")},
			{Label: "tbl", Kind: DataAddrs, Addrs: []string{"main.L1", "helper"}},
			{Label: "buf", Kind: DataZero, Size: 64},
			{Label: "pi", Kind: DataFloat, Floats: []float64{3.25}},
		}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if p.EntryPC != 0 {
		t.Errorf("entry pc = %d", p.EntryPC)
	}
	// Branch displacement: from index 1 to index 1 is 0... target L1 is at
	// index 1, branch is at index 1, so disp = 0.
	if p.Text[1].Imm != 0 {
		t.Errorf("self-branch displacement = %d, want 0", p.Text[1].Imm)
	}
	if p.CodeSyms["helper"] != IndexToAddr(4) {
		t.Errorf("helper at %#x", p.CodeSyms["helper"])
	}
	// Jump table words hold resolved code addresses.
	tblAddr := p.DataSyms["tbl"]
	off := tblAddr - DataBase
	w0 := int32(p.DataImage[off]) | int32(p.DataImage[off+1])<<8 |
		int32(p.DataImage[off+2])<<16 | int32(p.DataImage[off+3])<<24
	if w0 != p.CodeSyms["main.L1"] {
		t.Errorf("jump table word = %#x, want %#x", w0, p.CodeSyms["main.L1"])
	}
	// Float image round-trips.
	foff := p.DataSyms["pi"] - DataBase
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(p.DataImage[foff+int32(i)]) << (8 * i)
	}
	if FloatFromBits(bits) != 3.25 {
		t.Errorf("float in image = %v", FloatFromBits(bits))
	}
	// Alignment: pi must be 8-aligned even after odd-size msg and tables.
	if p.DataSyms["pi"]%8 != 0 {
		t.Errorf("float not aligned: %#x", p.DataSyms["pi"])
	}
}

func TestLinkErrors(t *testing.T) {
	f := NewFunction("main", Baseline)
	f.Emit(Instr{Op: OpB, Cond: CondAlways, Target: "missing"})
	p := &Program{Kind: Baseline, Funcs: []*Function{f}}
	if err := p.Link(); err == nil {
		t.Error("unresolved label must fail")
	}
	p2 := &Program{Kind: Baseline, Funcs: []*Function{NewFunction("notmain", Baseline)}}
	if err := p2.Link(); err == nil {
		t.Error("missing main must fail")
	}
	f3 := NewFunction("main", BranchReg)
	p3 := &Program{Kind: Baseline, Funcs: []*Function{f3}}
	if err := p3.Link(); err == nil {
		t.Error("kind mismatch must fail")
	}
	f4 := NewFunction("main", Baseline)
	f4.Emit(Instr{Op: OpNop})
	p4 := &Program{Kind: Baseline, Funcs: []*Function{f4},
		Data: []*DataItem{{Label: "x", Kind: DataWords, Words: []int32{1}},
			{Label: "x", Kind: DataWords, Words: []int32{2}}}}
	if err := p4.Link(); err == nil {
		t.Error("duplicate data symbol must fail")
	}
}

func TestAddrToIndex(t *testing.T) {
	f := NewFunction("main", Baseline)
	for i := 0; i < 5; i++ {
		f.Emit(Instr{Op: OpNop})
	}
	p := &Program{Kind: Baseline, Funcs: []*Function{f}}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		idx, err := p.AddrToIndex(IndexToAddr(i))
		if err != nil || idx != i {
			t.Fatalf("AddrToIndex(IndexToAddr(%d)) = %d, %v", i, idx, err)
		}
	}
	if _, err := p.AddrToIndex(TextBase + 2); err == nil {
		t.Error("misaligned address must fail")
	}
	if _, err := p.AddrToIndex(TextBase - 4); err == nil {
		t.Error("address below text must fail")
	}
	if _, err := p.AddrToIndex(IndexToAddr(5)); err == nil {
		t.Error("address past end must fail")
	}
}

func TestListing(t *testing.T) {
	f := NewFunction("main", BranchReg)
	f.Bind("L2")
	f.Emit(Instr{Op: OpAdd, Rd: 1, Rs1: 1, UseImm: true, Imm: 1, Comment: "increment"})
	s := f.Listing()
	if want := "L2:"; !contains(s, want) {
		t.Errorf("listing missing %q:\n%s", want, s)
	}
	if !contains(s, "r[1]=r[1]+1") || !contains(s, "increment") {
		t.Errorf("listing missing body:\n%s", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLinkAlignment(t *testing.T) {
	mk := func(n int) *Function {
		f := NewFunction("main", Baseline)
		for i := 0; i < n; i++ {
			f.Emit(Instr{Op: OpAdd, Rd: 1, Rs1: 0, UseImm: true, Imm: 1})
		}
		f.Emit(Instr{Op: OpJr, Rs1: RABase})
		f.Emit(Instr{Op: OpNop})
		return f
	}
	g := NewFunction("helper", Baseline)
	g.Emit(Instr{Op: OpJr, Rs1: RABase})
	g.Emit(Instr{Op: OpNop})
	p := &Program{Kind: Baseline, Funcs: []*Function{mk(3), g}, AlignWords: 8}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if p.FuncStarts["main"] != 0 {
		t.Errorf("main at %d", p.FuncStarts["main"])
	}
	if p.FuncStarts["helper"]%8 != 0 {
		t.Errorf("helper not aligned: index %d", p.FuncStarts["helper"])
	}
	// Padding must be noops and FuncOfPC must mark them as outside any
	// function.
	for i := 5; i < p.FuncStarts["helper"]; i++ {
		if p.Text[i].Op != OpNop || p.FuncOfPC[i] != "" {
			t.Errorf("pad slot %d wrong: %v %q", i, p.Text[i].Op, p.FuncOfPC[i])
		}
	}
	// Relinking without alignment restores a compact layout.
	p.AlignWords = 0
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if p.FuncStarts["helper"] != 5 {
		t.Errorf("compact relink: helper at %d", p.FuncStarts["helper"])
	}
}
