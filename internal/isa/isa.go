// Package isa defines the instruction-set model shared by the two machines
// evaluated in Davidson & Whalley, "Reducing the Cost of Branches by Using
// Registers" (ISCA 1990): a baseline RISC with delayed branches and a
// branch-register machine (BRM) in which every instruction names a branch
// register that supplies the address of the next instruction to execute.
//
// The package provides register conventions, opcodes, the Instr
// representation, 32-bit encodings for both machines (after the paper's
// Figures 10 and 11), an RTL pretty-printer matching the paper's notation,
// and the linked Program container executed by package emu.
package isa

import "fmt"

// Kind selects which of the two designed machines an instruction stream
// targets.
type Kind int

const (
	// Baseline is the paper's baseline machine: 32-bit fixed-length
	// instructions, load/store architecture, delayed branches with one
	// slot, 32 general-purpose data registers and 32 FP registers.
	Baseline Kind = iota
	// BranchReg is the branch-register machine: 16 data registers, 16 FP
	// registers, 8 branch registers with 8 corresponding instruction
	// registers, and no branch instructions — a branch-register field in
	// every instruction names the source of the next instruction address.
	BranchReg
)

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case BranchReg:
		return "branchreg"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Register-file sizes for the two machines (paper §7).
const (
	BaselineDataRegs  = 32
	BaselineFloatRegs = 32
	BRMDataRegs       = 16
	BRMFloatRegs      = 16
	BRMBranchRegs     = 8
)

// Fixed register roles. Both machines reserve r0 as a hardwired zero and
// r[NumRegs-2] as the stack pointer; the baseline machine links calls
// through RABase while the BRM links through branch register RABranch
// (the paper's b[7] convention, §4).
const (
	ZeroReg = 0

	// Baseline register roles.
	BaseRetReg  = 1  // function return value
	BaseArg0    = 1  // first argument register (args in r1..r6)
	BaseNumArgs = 6  // r1..r6 carry arguments
	RABase      = 12 // return address written by call
	BaseTmpReg  = 31 // assembler scratch
	BaseSPReg   = 30 // stack pointer

	// BRM register roles.
	BRMRetReg  = 1
	BRMArg0    = 1
	BRMNumArgs = 4 // r1..r4 carry arguments
	BRMTmpReg  = 15
	BRMSPReg   = 14

	// Branch registers.  b[0] is the PC; b[7] receives the address of the
	// next sequential instruction on every taken transfer, making it the
	// return-address / trash register by convention.
	PCBr = 0
	RABr = 7
)

// CalleeSavedBase reports whether baseline integer register r is preserved
// across calls. r14..r29 are callee-saved.
func CalleeSavedBase(r int) bool { return r >= 14 && r <= 29 }

// CalleeSavedBRM reports whether BRM integer register r is preserved across
// calls. r6..r12 are callee-saved.
func CalleeSavedBRM(r int) bool { return r >= 6 && r <= 12 }

// CalleeSavedFloatBase reports whether baseline FP register f is preserved
// across calls (f16..f31).
func CalleeSavedFloatBase(f int) bool { return f >= 16 && f <= 31 }

// CalleeSavedFloatBRM reports whether BRM FP register f is preserved across
// calls (f8..f15).
func CalleeSavedFloatBRM(f int) bool { return f >= 8 && f <= 15 }

// CalleeSavedBr reports whether branch register b is preserved across calls
// on the BRM. The paper distinguishes "scratch" branch registers from
// non-scratch ones usable for target calcs hoisted over calls; we make
// b[4..6] callee-saved.
func CalleeSavedBr(b int) bool { return b >= 4 && b <= 6 }

// Word and layout constants.
const (
	WordSize = 4           // bytes per word / per instruction
	TextBase = 0x0000_1000 // address of the first instruction
	DataBase = 0x0010_0000 // start of the static data segment
	StackTop = 0x0040_0000 // initial stack pointer (stack grows down)
	MemBytes = 0x0040_0000 // total data memory size
)

// Cond is a comparison condition used by compares and branches.
type Cond int

const (
	CondNone Cond = iota
	CondEQ
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	CondAlways
)

var condNames = [...]string{
	CondNone:   "?",
	CondEQ:     "==",
	CondNE:     "!=",
	CondLT:     "<",
	CondLE:     "<=",
	CondGT:     ">",
	CondGE:     ">=",
	CondAlways: "always",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", int(c))
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	}
	return c
}

// HoldsInt reports whether the condition holds for the signed comparison
// a ? b.
func (c Cond) HoldsInt(a, b int32) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	case CondAlways:
		return true
	}
	return false
}

// HoldsFloat reports whether the condition holds for the comparison a ? b.
func (c Cond) HoldsFloat(a, b float64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	case CondAlways:
		return true
	}
	return false
}
