package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Function is an assembled-but-unlinked unit of code for one machine: a
// flat instruction list plus a label table mapping label names to
// instruction indices.
type Function struct {
	Name   string
	Kind   Kind
	Code   []Instr
	Labels map[string]int // label -> index into Code
}

// NewFunction returns an empty function targeting machine k.
func NewFunction(name string, k Kind) *Function {
	return &Function{Name: name, Kind: k, Labels: map[string]int{}}
}

// Emit appends an instruction and returns its index.
func (f *Function) Emit(in Instr) int {
	f.Code = append(f.Code, in)
	return len(f.Code) - 1
}

// Bind attaches label to the next emitted instruction position.
func (f *Function) Bind(label string) {
	f.Labels[label] = len(f.Code)
}

// Listing renders the function as labeled RTLs, one per line.
func (f *Function) Listing() string {
	byIndex := map[int][]string{}
	for l, i := range f.Labels {
		byIndex[i] = append(byIndex[i], l)
	}
	for _, ls := range byIndex {
		sort.Strings(ls)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: /* %s */\n", f.Name, f.Kind)
	for i, in := range f.Code {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "\t%s", in.RTL(f.Kind))
		if in.Comment != "" {
			fmt.Fprintf(&b, " /* %s */", in.Comment)
		}
		b.WriteByte('\n')
	}
	for _, l := range byIndex[len(f.Code)] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}

// DataKind discriminates static data items.
type DataKind int

const (
	DataWords DataKind = iota // initialized 32-bit words
	DataBytes                 // initialized bytes (strings, char arrays)
	DataFloat                 // initialized float64 values (two words each)
	DataZero                  // zero-initialized region of Size bytes
	DataAddrs                 // words holding code label addresses (jump tables)
)

// DataReloc marks a word in a DataWords item that holds the address of a
// data symbol: the linker adds the symbol's resolved address to the word.
type DataReloc struct {
	WordIndex int
	Sym       string
}

// DataItem is one labeled object in the static data segment.
type DataItem struct {
	Label  string
	Kind   DataKind
	Words  []int32
	Bytes  []byte
	Floats []float64
	Size   int         // DataZero: byte size
	Addrs  []string    // DataAddrs: code labels resolved at link time
	Align  int         // required alignment (defaults: words/addrs 4, floats 8, bytes 1)
	Relocs []DataReloc // DataWords: data-symbol address fixups
}

// Program is a complete linked or linkable unit: functions, data, and after
// Link, the address maps the emulator executes against.
type Program struct {
	Kind  Kind
	Funcs []*Function
	Data  []*DataItem

	// AlignWords, when positive, pads the text segment so every function
	// starts on a multiple of AlignWords instructions — the paper's §9
	// suggestion of aligning function entries on cache line boundaries to
	// reduce conflict between sequential fetches and prefetched targets.
	// Padding noops are never executed (functions end in transfers).
	AlignWords int

	// Populated by Link:
	Linked     bool
	Text       []Instr          // flat instruction memory
	TextMeta   []InstrMeta      // per-instruction metadata
	EntryPC    int              // index into Text of main's first instruction
	CodeSyms   map[string]int32 // global label -> byte address in text space
	DataSyms   map[string]int32 // data label -> byte address
	DataImage  []byte           // initial contents of the data segment
	DataLimit  int32            // first free byte address after static data
	FuncStarts map[string]int   // function name -> Text index
	FuncOfPC   []string         // Text index -> enclosing function name
}

// InstrMeta carries per-instruction linkage facts used by the emulator and
// the experiment harness.
type InstrMeta struct {
	Func string
	Addr int32 // byte address of the instruction
}

// AddrToIndex converts an instruction byte address to a Text index.
func (p *Program) AddrToIndex(addr int32) (int, error) {
	off := addr - TextBase
	if off < 0 || off%WordSize != 0 || int(off/WordSize) >= len(p.Text) {
		return 0, fmt.Errorf("isa: bad instruction address %#x", uint32(addr))
	}
	return int(off / WordSize), nil
}

// IndexToAddr converts a Text index to an instruction byte address.
func IndexToAddr(i int) int32 { return TextBase + int32(i)*WordSize }

// Link lays out functions contiguously in the text space starting at
// TextBase, lays out data at DataBase, resolves all symbolic targets to
// immediates, and builds the data image (including jump tables of code
// addresses). Function-local labels are qualified as "func.label" in the
// global symbol table; bare function names resolve to their entry.
func (p *Program) Link() error {
	p.CodeSyms = map[string]int32{}
	p.DataSyms = map[string]int32{}
	p.FuncStarts = map[string]int{}
	p.Text = p.Text[:0]
	p.TextMeta = p.TextMeta[:0]
	p.FuncOfPC = p.FuncOfPC[:0]

	// Pass 1: assign addresses.
	idx := 0
	pad := make(map[string]int) // padding noops inserted before each function
	for _, f := range p.Funcs {
		if f.Kind != p.Kind {
			return fmt.Errorf("isa: function %s targets %v, program is %v", f.Name, f.Kind, p.Kind)
		}
		if _, dup := p.CodeSyms[f.Name]; dup {
			return fmt.Errorf("isa: duplicate function %s", f.Name)
		}
		if p.AlignWords > 1 {
			if r := idx % p.AlignWords; r != 0 {
				pad[f.Name] = p.AlignWords - r
				idx += p.AlignWords - r
			}
		}
		p.FuncStarts[f.Name] = idx
		p.CodeSyms[f.Name] = IndexToAddr(idx)
		for l, li := range f.Labels {
			if li > len(f.Code) {
				return fmt.Errorf("isa: label %s.%s out of range", f.Name, l)
			}
			p.CodeSyms[f.Name+"."+l] = IndexToAddr(idx + li)
		}
		idx += len(f.Code)
	}

	// Data layout.
	addr := int32(DataBase)
	align := func(a int32, n int32) int32 {
		if r := a % n; r != 0 {
			return a + n - r
		}
		return a
	}
	for _, d := range p.Data {
		al := int32(d.Align)
		if al == 0 {
			switch d.Kind {
			case DataBytes:
				al = 1
			case DataFloat:
				al = 8
			default:
				al = 4
			}
		}
		addr = align(addr, al)
		if _, dup := p.DataSyms[d.Label]; dup {
			return fmt.Errorf("isa: duplicate data symbol %s", d.Label)
		}
		p.DataSyms[d.Label] = addr
		addr += int32(d.byteSize())
	}
	p.DataLimit = align(addr, 8)

	// Build data image.
	img := make([]byte, p.DataLimit-DataBase)
	put32 := func(off int32, v int32) {
		img[off] = byte(v)
		img[off+1] = byte(v >> 8)
		img[off+2] = byte(v >> 16)
		img[off+3] = byte(v >> 24)
	}
	for _, d := range p.Data {
		off := p.DataSyms[d.Label] - DataBase
		switch d.Kind {
		case DataWords:
			for i, w := range d.Words {
				put32(off+int32(i*4), w)
			}
			for _, rl := range d.Relocs {
				sa, ok := p.DataSyms[rl.Sym]
				if !ok {
					return fmt.Errorf("isa: data item %s: unknown reloc symbol %s", d.Label, rl.Sym)
				}
				put32(off+int32(rl.WordIndex*4), d.Words[rl.WordIndex]+sa)
			}
		case DataBytes:
			copy(img[off:], d.Bytes)
		case DataFloat:
			for i, f := range d.Floats {
				bits := floatBits(f)
				put32(off+int32(i*8), int32(bits))
				put32(off+int32(i*8+4), int32(bits>>32))
			}
		case DataZero:
			// already zero
		case DataAddrs:
			for i, lbl := range d.Addrs {
				a, ok := p.CodeSyms[lbl]
				if !ok {
					return fmt.Errorf("isa: jump table %s: unknown code label %s", d.Label, lbl)
				}
				put32(off+int32(i*4), a)
			}
		}
	}
	p.DataImage = img

	// Pass 2: resolve instruction targets and flatten.
	for _, f := range p.Funcs {
		for i := 0; i < pad[f.Name]; i++ {
			here := IndexToAddr(len(p.Text))
			p.Text = append(p.Text, Instr{Op: OpNop, Comment: "alignment pad"})
			p.TextMeta = append(p.TextMeta, InstrMeta{Func: "", Addr: here})
			p.FuncOfPC = append(p.FuncOfPC, "")
		}
		start := p.FuncStarts[f.Name]
		for i := range f.Code {
			in := f.Code[i] // copy
			here := IndexToAddr(start + i)
			if in.Target != "" {
				taddr, ok := p.resolveCode(f, in.Target)
				if !ok {
					return fmt.Errorf("isa: %s: unresolved code label %q", f.Name, in.Target)
				}
				switch in.Op {
				case OpB, OpCall, OpBrCalc:
					if in.Op == OpBrCalc && in.Rs1 >= 0 {
						_, lo := SplitAddr(taddr)
						in.Imm = lo
					} else {
						in.Imm = taddr - here // PC-relative displacement
					}
				case OpSethi:
					hi, _ := SplitAddr(taddr)
					in.Imm = hi
				default:
					return fmt.Errorf("isa: %s: op %v cannot take code target", f.Name, in.Op)
				}
				in.UseImm = true
				if in.Comment == "" {
					in.Comment = in.Target
				}
				in.Target = ""
			}
			if in.DataTarget != "" {
				daddr, ok := p.DataSyms[in.DataTarget]
				if !ok {
					return fmt.Errorf("isa: %s: unresolved data label %q", f.Name, in.DataTarget)
				}
				hi, lo := SplitAddr(daddr)
				if in.Op == OpSethi {
					in.Imm = hi
				} else if in.Lo {
					in.Imm = lo
				} else {
					in.Imm = daddr
				}
				in.UseImm = true
				if in.Comment == "" {
					in.Comment = in.DataTarget
				}
				in.DataTarget = ""
				in.Lo = false
			}
			p.Text = append(p.Text, in)
			p.TextMeta = append(p.TextMeta, InstrMeta{Func: f.Name, Addr: here})
			p.FuncOfPC = append(p.FuncOfPC, f.Name)
		}
	}

	entry, ok := p.FuncStarts["main"]
	if !ok {
		return fmt.Errorf("isa: program has no main")
	}
	p.EntryPC = entry
	p.Linked = true
	return nil
}

// resolveCode resolves a code label, preferring f-local labels, then global
// function names, then any qualified label.
func (p *Program) resolveCode(f *Function, label string) (int32, bool) {
	if a, ok := p.CodeSyms[f.Name+"."+label]; ok {
		return a, true
	}
	if a, ok := p.CodeSyms[label]; ok {
		return a, true
	}
	return 0, false
}

func (d *DataItem) byteSize() int {
	switch d.Kind {
	case DataWords:
		return len(d.Words) * 4
	case DataBytes:
		return len(d.Bytes)
	case DataFloat:
		return len(d.Floats) * 8
	case DataZero:
		return d.Size
	case DataAddrs:
		return len(d.Addrs) * 4
	}
	return 0
}

// Listing renders every function in the program.
func (p *Program) Listing() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.Listing())
		b.WriteByte('\n')
	}
	return b.String()
}
