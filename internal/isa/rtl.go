package isa

import (
	"fmt"
	"strings"
)

// RTL renders the instruction in the register-transfer-list notation used
// throughout the paper, e.g.
//
//	r[3]=r[1]+r[2];
//	b[2]=b[0]+(L2-L1);
//	b[7]=r[5]<0->b[2]|b[0];
//	PC=NZ==0->L14;
//
// For BRM instructions whose BR field names a branch register other than
// the PC, the transfer is shown as a parallel assignment b[0]=b[k], matching
// the paper's Figures 4, 6 and 8.
func (in *Instr) RTL(k Kind) string {
	var b strings.Builder
	b.WriteString(in.coreRTL(k))
	if k == BranchReg && in.BR != PCBr {
		fmt.Fprintf(&b, "; b[0]=b[%d]", in.BR)
	}
	return b.String()
}

func (in *Instr) rhs() string {
	if in.UseImm {
		return fmt.Sprintf("%d", in.Imm)
	}
	return fmt.Sprintf("r[%d]", in.Rs2)
}

func (in *Instr) addr() string {
	off := in.rhs()
	if in.DataTarget != "" {
		off = "LO(" + in.DataTarget + ")"
	}
	if in.Rs1 < 0 {
		return off
	}
	if in.UseImm && in.Imm == 0 && in.DataTarget == "" {
		return fmt.Sprintf("r[%d]", in.Rs1)
	}
	return fmt.Sprintf("r[%d]+%s", in.Rs1, off)
}

var aluSyms = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpSll: "<<", OpSrl: ">>", OpSra: ">>",
}

var fpSyms = map[Op]string{OpFadd: "+", OpFsub: "-", OpFmul: "*", OpFdiv: "/"}

func (in *Instr) coreRTL(k Kind) string {
	switch in.Op {
	case OpNop:
		return "NL=NL"
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra:
		return fmt.Sprintf("r[%d]=r[%d]%s%s", in.Rd, in.Rs1, aluSyms[in.Op], in.rhs())
	case OpSethi:
		if in.DataTarget != "" {
			return fmt.Sprintf("r[%d]=HI(%s)", in.Rd, in.DataTarget)
		}
		return fmt.Sprintf("r[%d]=HI(%d)", in.Rd, in.Imm)
	case OpLw:
		return fmt.Sprintf("r[%d]=L[%s]", in.Rd, in.addr())
	case OpLb:
		return fmt.Sprintf("r[%d]=B[%s]", in.Rd, in.addr())
	case OpSw:
		return fmt.Sprintf("L[%s]=r[%d]", in.addr(), in.Rd)
	case OpSb:
		return fmt.Sprintf("B[%s]=r[%d]", in.addr(), in.Rd)
	case OpLf:
		return fmt.Sprintf("f[%d]=F[%s]", in.Rd, in.addr())
	case OpSf:
		return fmt.Sprintf("F[%s]=f[%d]", in.addr(), in.Rd)
	case OpFadd, OpFsub, OpFmul, OpFdiv:
		return fmt.Sprintf("f[%d]=f[%d]%sf[%d]", in.Rd, in.Rs1, fpSyms[in.Op], in.Rs2)
	case OpFneg:
		return fmt.Sprintf("f[%d]=-f[%d]", in.Rd, in.Rs1)
	case OpFmov:
		return fmt.Sprintf("f[%d]=f[%d]", in.Rd, in.Rs1)
	case OpCvtif:
		return fmt.Sprintf("f[%d]=(float)r[%d]", in.Rd, in.Rs1)
	case OpCvtfi:
		return fmt.Sprintf("r[%d]=(int)f[%d]", in.Rd, in.Rs1)
	case OpTrap:
		return fmt.Sprintf("trap(%d)", in.Imm)
	case OpSet:
		return fmt.Sprintf("r[%d]=r[%d]%s%s", in.Rd, in.Rs1, in.Cond, in.rhs())
	case OpFSet:
		return fmt.Sprintf("r[%d]=f[%d]%sf[%d]", in.Rd, in.Rs1, in.Cond, in.Rs2)
	case OpCmp:
		return fmt.Sprintf("CC=r[%d]?%s", in.Rs1, in.rhs())
	case OpFcmp:
		return fmt.Sprintf("CC=f[%d]?f[%d]", in.Rs1, in.Rs2)
	case OpB:
		if in.Cond == CondAlways {
			return fmt.Sprintf("PC=%s", in.targetStr())
		}
		return fmt.Sprintf("PC=CC%s0->%s", in.Cond, in.targetStr())
	case OpCall:
		return fmt.Sprintf("r[%d]=PC+8; PC=%s", RABase, in.targetStr())
	case OpJr:
		return fmt.Sprintf("PC=r[%d]", in.Rs1)
	case OpJalr:
		return fmt.Sprintf("r[%d]=PC+8; PC=r[%d]", RABase, in.Rs1)
	case OpBrCalc:
		if in.Rs1 >= 0 {
			if in.DataTarget != "" {
				return fmt.Sprintf("b[%d]=r[%d]+LO(%s)", in.Rd, in.Rs1, in.DataTarget)
			}
			if in.Target != "" {
				return fmt.Sprintf("b[%d]=r[%d]+LO(%s)", in.Rd, in.Rs1, in.Target)
			}
			return fmt.Sprintf("b[%d]=r[%d]+%d", in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("b[%d]=b[0]+(%s-.)", in.Rd, in.targetStr())
	case OpBrLd:
		return fmt.Sprintf("b[%d]=L[%s]", in.Rd, in.addr())
	case OpCmpBr:
		return fmt.Sprintf("b[%d]=r[%d]%s%s->b[%d]|b[0]", RABr, in.Rs1, in.Cond, in.rhs(), in.BSrc)
	case OpFCmpBr:
		return fmt.Sprintf("b[%d]=f[%d]%sf[%d]->b[%d]|b[0]", RABr, in.Rs1, in.Cond, in.Rs2, in.BSrc)
	case OpMovBr:
		return fmt.Sprintf("b[%d]=b[%d]", in.Rd, in.BSrc)
	case OpMovRB:
		return fmt.Sprintf("r[%d]=b[%d]", in.Rd, in.BSrc)
	case OpMovBR:
		return fmt.Sprintf("b[%d]=r[%d]", in.Rd, in.Rs1)
	}
	return fmt.Sprintf("<%s>", in.Op)
}

func (in *Instr) targetStr() string {
	if in.Target != "" {
		return in.Target
	}
	return fmt.Sprintf("0x%x", uint32(in.Imm))
}

// String renders a compact assembly-like form, with the RTL as a comment
// style fallback for unusual operations.
func (in *Instr) String() string {
	s := in.RTL(BranchReg)
	if in.Comment != "" {
		s += " /* " + in.Comment + " */"
	}
	return s
}
