package isa

import "math"

// SplitAddr splits a 32-bit value into a high part for sethi (rd = hi<<12)
// and a signed 12-bit low part such that (hi<<12) + lo == v. The low part is
// balanced into [-2048, 2047] so it fits the machines' signed add
// immediates (the SPARC-style two-instruction global address calculation of
// paper §4).
func SplitAddr(v int32) (hi int32, lo int32) {
	lo = v & 0xFFF
	if lo >= 0x800 {
		lo -= 0x1000
	}
	hi = int32(uint32(v-lo) >> 12)
	return hi, lo
}

// floatBits returns the IEEE-754 bit pattern of f for the data image.
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// FloatBits returns the IEEE-754 bit pattern of f.
func FloatBits(f float64) uint64 { return math.Float64bits(f) }

// FloatFromBits is the inverse of floatBits.
func FloatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// FitsSigned reports whether v fits in an n-bit signed field.
func FitsSigned(v int32, n uint) bool {
	min := int32(-1) << (n - 1)
	max := -min - 1
	return v >= min && v <= max
}

// ALUImmBits returns the width of the signed immediate field of ALU and
// memory instructions on machine k (paper §7: the BRM has a "smaller range
// of available constants in some instructions").
func ALUImmBits(k Kind) uint {
	if k == Baseline {
		return 15
	}
	return 12
}

// CmpImmBits returns the width of the signed immediate of the compare
// instruction on machine k (the BRM compare also encodes the source branch
// register, costing immediate bits).
func CmpImmBits(k Kind) uint {
	if k == Baseline {
		return 15
	}
	return 11
}
