package isa

import "fmt"

// Op enumerates the operations of both machines. The two instruction sets
// share their ALU, memory and floating-point operations; the control-flow
// operations differ (paper §7): the baseline machine has branch, call and
// indirect-jump instructions while the BRM has compare-with-assignment,
// branch-target-address calculation, and branch-register moves, with the
// transfer of control itself carried by the BR field of any instruction.
type Op int

const (
	OpNop Op = iota

	// Integer ALU, three-address: rd = rs1 op (rs2|imm).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra

	// OpSethi loads the high 20 bits of a constant: rd = imm << 12.
	OpSethi

	// Memory. Address is rs1 + (rs2|imm).
	OpLw // rd = M[addr] (word)
	OpLb // rd = B[addr] (signed byte)
	OpSw // M[addr] = rd
	OpSb // B[addr] = rd (low byte)
	OpLf // f[rd] = F[addr] (float, one word slot; value model is float64)
	OpSf // F[addr] = f[rd]

	// Floating point, three-address on the FP file.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFneg  // f[rd] = -f[rs1]
	OpFmov  // f[rd] = f[rs1]
	OpCvtif // f[rd] = (float) r[rs1]
	OpCvtfi // r[rd] = (int) f[rs1] (truncating)

	// OpTrap is the supervisor call used for I/O on both machines; Imm
	// selects the service (see Trap*).
	OpTrap

	// OpSet materializes a comparison (MIPS-style slt family):
	//   rd = (r[rs1] Cond rhs) ? 1 : 0
	OpSet
	// OpFSet is OpSet over FP sources: rd = (f[rs1] Cond f[rs2]) ? 1 : 0.
	OpFSet

	// ---- Baseline-only control flow ----

	// OpCmp sets the condition code from r[rs1] ? (rs2|imm).
	OpCmp
	// OpFcmp sets the condition code from f[rs1] ? f[rs2].
	OpFcmp
	// OpB branches to Target when Cond holds for the condition code
	// (CondAlways = unconditional). Delayed: the following instruction
	// (the delay slot) is always executed.
	OpB
	// OpCall calls Target, writing the return address into r[RABase].
	// Delayed.
	OpCall
	// OpJr jumps to the address in r[rs1]. Delayed. Used for returns and
	// switch dispatch.
	OpJr
	// OpJalr calls the address in r[rs1], linking through r[RABase].
	// Delayed.
	OpJalr

	// ---- BRM-only operations ----

	// OpBrCalc computes a branch target address:
	//   b[rd] = b[0] + disp          (UseImm, Rs1 < 0; PC-relative)
	//   b[rd] = r[rs1] + lo(imm)     (Rs1 >= 0; low part after a sethi)
	// Assigning a branch register directs the instruction cache to
	// prefetch the target into instruction register i[rd] (paper §3, §8).
	OpBrCalc
	// OpBrLd loads a branch target address from memory:
	//   b[rd] = M[r[rs1] + imm]   (switch tables, function pointers).
	OpBrLd
	// OpCmpBr is the BRM conditional compare-with-assignment:
	//   b[7] = (r[rs1] Cond (rs2|imm)) -> b[BSrc] | b[0]
	// The destination b[7] and false-path source b[0] are implied by the
	// encoding (paper §4).
	OpCmpBr
	// OpFCmpBr is OpCmpBr over the FP file: f[rs1] Cond f[rs2].
	OpFCmpBr
	// OpMovBr copies branch registers: b[rd] = b[BSrc] (save/restore of
	// b[7] across bodies containing transfers).
	OpMovBr
	// OpMovRB moves a branch register into a data register: r[rd] = b[BSrc]
	// (spilling branch registers to the stack).
	OpMovRB
	// OpMovBR moves a data register into a branch register: b[rd] = r[rs1]
	// (restoring spilled branch registers).
	OpMovBR

	NumOps
)

// Trap service codes (Imm field of OpTrap).
const (
	TrapExit = iota // halt; r1 = exit status
	TrapGetc        // r1 = next input byte, or -1 at end of input
	TrapPutc        // write low byte of r1 to the output stream
	TrapPutf        // write f1 formatted %.4f to the output stream
)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpSll: "sll",
	OpSrl: "srl", OpSra: "sra", OpSethi: "sethi", OpLw: "lw", OpLb: "lb",
	OpSw: "sw", OpSb: "sb", OpLf: "lf", OpSf: "sf", OpFadd: "fadd",
	OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv", OpFneg: "fneg",
	OpFmov: "fmov", OpCvtif: "cvtif", OpCvtfi: "cvtfi", OpTrap: "trap",
	OpCmp: "cmp", OpFcmp: "fcmp", OpB: "b", OpCall: "call", OpJr: "jr",
	OpJalr: "jalr", OpBrCalc: "brcalc", OpBrLd: "brld", OpCmpBr: "cmpbr",
	OpFCmpBr: "fcmpbr", OpMovBr: "movbr", OpMovRB: "movrb", OpMovBR: "movbr2",
	OpSet: "set", OpFSet: "fset",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// IsALU reports whether op is an integer ALU operation rd = rs1 op rhs.
func (op Op) IsALU() bool { return op >= OpAdd && op <= OpSra }

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool { return op == OpLw || op == OpLb || op == OpLf || op == OpBrLd }

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool { return op == OpSw || op == OpSb || op == OpSf }

// IsFloat reports whether op operates on the FP register file.
func (op Op) IsFloat() bool {
	switch op {
	case OpFadd, OpFsub, OpFmul, OpFdiv, OpFneg, OpFmov, OpCvtif, OpCvtfi,
		OpLf, OpSf, OpFcmp, OpFCmpBr, OpFSet:
		return true
	}
	return false
}

// IsBaselineBranch reports whether op is a baseline control-transfer
// instruction (with a delay slot).
func (op Op) IsBaselineBranch() bool {
	return op == OpB || op == OpCall || op == OpJr || op == OpJalr
}

// IsBRMOnly reports whether op exists only on the branch-register machine.
func (op Op) IsBRMOnly() bool { return op >= OpBrCalc && op <= OpMovBR }

// WritesBranchReg reports whether op's destination is a branch register.
func (op Op) WritesBranchReg() bool {
	switch op {
	case OpBrCalc, OpBrLd, OpCmpBr, OpFCmpBr, OpMovBr, OpMovBR:
		return true
	}
	return false
}

// Instr is one machine instruction for either target. Which fields are
// meaningful depends on Op; the zero value is a nop.
//
// On the BRM every instruction additionally carries BR, the branch-register
// field: BR == 0 (the PC) means "next sequential instruction", while BR != 0
// makes this instruction a transfer of control through b[BR] (paper §3).
type Instr struct {
	Op     Op
	Cond   Cond  // OpCmp/OpFcmp/OpB/OpCmpBr/OpFCmpBr
	Rd     int   // destination register (data, FP or branch file by Op)
	Rs1    int   // first source (or < 0 when unused)
	Rs2    int   // second source register (when !UseImm)
	Imm    int32 // immediate / displacement (when UseImm)
	UseImm bool  // the encodings' i bit
	BR     int   // BRM next-instruction branch register field
	BSrc   int   // BRM source branch register (OpCmpBr taken path, moves)

	// Target carries a symbolic code label for OpB/OpCall/OpBrCalc until
	// the assembler resolves it into Imm. DataTarget likewise names a data
	// symbol whose address is materialized by sethi/lo pairs.
	Target     string
	DataTarget string
	// Lo marks the low-part half of a split address materialization.
	Lo bool

	Comment string
}

// IsTransfer reports whether the instruction transfers control on machine
// kind k (baseline: branch ops; BRM: BR field != 0).
func (in *Instr) IsTransfer(k Kind) bool {
	if k == Baseline {
		return in.Op.IsBaselineBranch()
	}
	return in.BR != PCBr
}

// ReadsCC reports whether the instruction consumes the baseline condition
// code.
func (in *Instr) ReadsCC() bool { return in.Op == OpB && in.Cond != CondAlways }

// SetsCC reports whether the instruction writes the baseline condition code.
func (in *Instr) SetsCC() bool { return in.Op == OpCmp || in.Op == OpFcmp }
