package core

import (
	"strings"
	"testing"

	"branchreg/internal/ir"
	"branchreg/internal/irgen"
	"branchreg/internal/isa"
	"branchreg/internal/mc"
	"branchreg/internal/opt"
)

func lowerMC(t *testing.T, src string) *ir.Unit {
	t.Helper()
	u, err := mc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	iu, err := irgen.Lower(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.RunUnit(iu, opt.Default); err != nil {
		t.Fatal(err)
	}
	return iu
}

func fn(t *testing.T, u *ir.Unit, name string) *ir.Func {
	t.Helper()
	for _, f := range u.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestAllocatablePools(t *testing.T) {
	cases := []struct {
		bregs          int
		caller, callee int
	}{
		{8, 2, 3}, // b2,b3 caller; b4,b5,b6 callee
		{7, 2, 2},
		{6, 2, 1},
		{5, 2, 0},
		{4, 1, 0},
		{3, 0, 0},
	}
	for _, c := range cases {
		cfg := Config{BranchRegs: c.bregs}
		caller, callee := cfg.allocatable()
		if len(caller) != c.caller || len(callee) != c.callee {
			t.Errorf("bregs=%d: pools %d/%d, want %d/%d",
				c.bregs, len(caller), len(callee), c.caller, c.callee)
		}
		for _, b := range append(caller, callee...) {
			if b == pcBr || b == raBr || b == scratchBr {
				t.Errorf("bregs=%d: pool contains reserved b%d", c.bregs, b)
			}
		}
	}
	if !calleeSavedBr(4) || !calleeSavedBr(6) || calleeSavedBr(3) || calleeSavedBr(7) {
		t.Error("calleeSavedBr wrong")
	}
}

func TestCollectUses(t *testing.T) {
	iu := lowerMC(t, `
int h(int x) { return x; }
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) s += h(i);
    return s;
}`)
	f := fn(t, iu, "main")
	uses := collectUses(f)
	var callUses, labelUses int
	for _, u := range uses {
		if u.isCall {
			callUses++
			if u.target != "h" {
				t.Errorf("call target %q", u.target)
			}
		} else {
			labelUses++
		}
	}
	if callUses != 1 {
		t.Errorf("call uses = %d", callUses)
	}
	if labelUses == 0 {
		t.Error("no label uses collected")
	}
}

func TestEffCondTargets(t *testing.T) {
	ins := &ir.Ins{Kind: ir.OpBr, Targets: []string{"T", "F"}}
	taken, other := effCondTargets(ins, "F")
	if taken != "T" || other != "" {
		t.Errorf("fallthrough-false: %q %q", taken, other)
	}
	taken, other = effCondTargets(ins, "T")
	if taken != "F" || other != "" {
		t.Errorf("fallthrough-true: %q %q", taken, other)
	}
	taken, other = effCondTargets(ins, "X")
	if taken != "T" || other != "F" {
		t.Errorf("no fallthrough: %q %q", taken, other)
	}
}

func TestPlanHoistingBasics(t *testing.T) {
	iu := lowerMC(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 100; i++)
        if (i & 1) s += i;
    return s;
}`)
	f := fn(t, iu, "main")
	caller, callee := DefaultConfig.allocatable()
	allocs := planHoisting(f, DefaultConfig, caller, callee)
	if len(allocs) == 0 {
		t.Fatal("nothing hoisted from a hot loop")
	}
	for _, h := range allocs {
		if h.place == nil || h.loop == nil {
			t.Fatalf("alloc incomplete: %+v", h)
		}
		if h.loop.Blocks[h.place] {
			t.Error("calc placed inside the loop")
		}
		// No call in the loop: caller-saved registers suffice.
		if h.loop.HasCall {
			t.Error("loop unexpectedly has a call")
		}
	}
	// Hoisting disabled: no allocations.
	cfg := DefaultConfig
	cfg.Hoist = false
	if got := planHoisting(f, cfg, caller, callee); got != nil {
		t.Error("Hoist=false must not allocate")
	}
}

func TestPlanHoistingCallConstraint(t *testing.T) {
	iu := lowerMC(t, `
int g(int x) { return x + 1; }
int main(void) {
    int s = 0;
    for (int i = 0; i < 100; i++)
        s += g(i);
    return s;
}`)
	f := fn(t, iu, "main")
	caller, callee := DefaultConfig.allocatable()
	allocs := planHoisting(f, DefaultConfig, caller, callee)
	for _, h := range allocs {
		if (h.loop.HasCall || blockHasCall(h.place)) && !calleeSavedBr(h.breg) {
			t.Errorf("target %s in a loop with calls allocated caller-saved b%d",
				h.target, h.breg)
		}
	}
	// The call target itself should be hoisted.
	foundCall := false
	for _, h := range allocs {
		if h.isCall && h.target == "g" {
			foundCall = true
		}
	}
	if !foundCall {
		t.Error("call target not hoisted out of the loop")
	}
}

func TestPlanHoistingInterference(t *testing.T) {
	// Two targets in the same loop must not share a branch register.
	iu := lowerMC(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 100; i++) {
        if (i & 1) s += i;
        if (i & 2) s -= i;
        if (i & 4) s *= 2;
    }
    return s;
}`)
	f := fn(t, iu, "main")
	caller, callee := DefaultConfig.allocatable()
	allocs := planHoisting(f, DefaultConfig, caller, callee)
	seen := map[int][]*hoistAlloc{}
	for _, h := range allocs {
		for _, other := range seen[h.breg] {
			for b := range h.scopeBlocks() {
				if other.scopeBlocks()[b] {
					t.Errorf("b%d shared by overlapping scopes (%s, %s)",
						h.breg, h.target, other.target)
				}
			}
		}
		seen[h.breg] = append(seen[h.breg], h)
	}
}

func TestPlanHoistingNestedExtension(t *testing.T) {
	iu := lowerMC(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 50; i++)
        for (int j = 0; j < 50; j++)
            s += i * j;
    return s;
}`)
	f := fn(t, iu, "main")
	caller, callee := DefaultConfig.allocatable()
	allocs := planHoisting(f, DefaultConfig, caller, callee)
	// The inner loop's back-edge target should end up hoisted out of the
	// outer loop (depth-0 placement) via the iterative extension.
	extended := false
	for _, h := range allocs {
		if h.place.Depth == 0 && h.loop.Depth >= 1 {
			extended = true
		}
	}
	if !extended {
		t.Error("no calculation was extended to the outermost preheader")
	}
}

func TestUsedCalleeBrs(t *testing.T) {
	allocs := []*hoistAlloc{{breg: 2}, {breg: 5}, {breg: 4}, {breg: 5}}
	got := usedCalleeBrs(allocs)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("usedCalleeBrs = %v", got)
	}
}

func TestGenBRMEncodes(t *testing.T) {
	iu := lowerMC(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
float area(float r) { return 3.14 * r * r; }
int main(void) {
    int s = fib(10);
    float a = area(2.0);
    switch (s % 5) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return (int)a;
    default: return 0;
    }
}`)
	p, err := GenBranchReg(iu, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Text {
		if _, err := isa.Encode(in, isa.BranchReg); err != nil {
			t.Fatalf("instruction %d (%s) does not encode: %v", i, in.RTL(isa.BranchReg), err)
		}
	}
	// The BRM must contain no baseline branch instructions.
	for i, in := range p.Text {
		if in.Op.IsBaselineBranch() || in.Op == isa.OpCmp || in.Op == isa.OpFcmp {
			t.Errorf("instruction %d is a baseline op %v", i, in.Op)
		}
	}
}

func TestRAModes(t *testing.T) {
	iu := lowerMC(t, `
int leaf(int x) { return x + 1; }
int branchy(int x) {
    int s = 0;
    for (int i = 0; i < x; i++) s += i;
    return s;
}
int caller(int x) { return branchy(x) + leaf(x); }
int main(void) { return caller(5); }`)

	listing := func(name string) string {
		f := fn(t, iu, name)
		out, _, err := GenBRMFunc(f, DefaultConfig)
		if err != nil {
			t.Fatal(err)
		}
		return out.Listing()
	}
	// Leaf with no transfers: returns directly through b[7], no RA save.
	leaf := listing("leaf")
	if strings.Contains(leaf, "save return address") {
		t.Errorf("leaf saved RA:\n%s", leaf)
	}
	if !strings.Contains(leaf, "b[0]=b[7]") {
		t.Errorf("leaf does not return via b[7]:\n%s", leaf)
	}
	// Branchy but call-free: RA saved to a branch register, not memory.
	br := listing("branchy")
	if !strings.Contains(br, "]=b[7]") {
		t.Errorf("branchy does not save RA to a branch register:\n%s", br)
	}
	if strings.Contains(br, "spill return address") {
		t.Errorf("branchy spilled RA to memory:\n%s", br)
	}
	// Makes calls: RA spilled to the stack.
	ca := listing("caller")
	if !strings.Contains(ca, "spill return address") {
		t.Errorf("caller does not spill RA:\n%s", ca)
	}
	if !strings.Contains(ca, "restore return address") {
		t.Errorf("caller does not restore RA:\n%s", ca)
	}
}

func TestCarrierAttachment(t *testing.T) {
	iu := lowerMC(t, `
int main(void) {
    int s = 0;
    for (int i = 0; i < 10; i++) s += i;
    return s;
}`)
	f := fn(t, iu, "main")
	out, _, err := GenBRMFunc(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	// The loop back-edge transfer must ride on a real instruction, not a
	// noop (the paper's central code pattern, Figure 4).
	attached := 0
	for _, in := range out.Code {
		if in.BR != 0 && in.Op != isa.OpNop {
			attached++
		}
	}
	if attached == 0 {
		t.Errorf("no transfers attached to real instructions:\n%s", out.Listing())
	}
}

func TestNoopReplacement(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    for (int i = 0; i < 100; i++) {
        if (s > 50) s -= 9;
        s += i;
    }
    return s;
}`
	iu := lowerMC(t, src)
	withRepl, _, err := GenBRMFunc(fn(t, iu, "main"), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	iu2 := lowerMC(t, src)
	cfg := DefaultConfig
	cfg.ReplaceNoops = false
	withoutRepl, _, err := GenBRMFunc(fn(t, iu2, "main"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := func(f *isa.Function) int {
		n := 0
		for _, in := range f.Code {
			if in.Op == isa.OpNop {
				n++
			}
		}
		return n
	}
	if count(withRepl) > count(withoutRepl) {
		t.Errorf("replacement increased noops: %d vs %d", count(withRepl), count(withoutRepl))
	}
}

func TestBranchRegsAblationStillCompiles(t *testing.T) {
	src := `
int g(int x) { return x * 2; }
int main(void) {
    int s = 0;
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++)
            s += g(i) + j;
    return s;
}`
	for _, n := range []int{3, 4, 5, 6, 7, 8} {
		iu := lowerMC(t, src)
		cfg := DefaultConfig
		cfg.BranchRegs = n
		p, err := GenBranchReg(iu, cfg)
		if err != nil {
			t.Fatalf("bregs=%d: %v", n, err)
		}
		for i, in := range p.Text {
			if in.BR >= n && !(in.BR == raBr) {
				t.Errorf("bregs=%d: instruction %d uses b%d", n, i, in.BR)
			}
		}
	}
}
