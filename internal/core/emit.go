package core

import (
	"fmt"

	"branchreg/internal/codegen"
	"branchreg/internal/ir"
	"branchreg/internal/isa"
)

// GenBranchReg compiles an IR unit for the branch-register machine.
func GenBranchReg(u *ir.Unit, cfg Config) (*isa.Program, error) {
	p := &isa.Program{Kind: isa.BranchReg}
	for _, d := range u.Data {
		p.Data = append(p.Data, codegen.ConvertDatum(d))
	}
	for _, f := range u.Funcs {
		fn, data, err := GenBRMFunc(f, cfg)
		if err != nil {
			return nil, err
		}
		p.Funcs = append(p.Funcs, fn)
		p.Data = append(p.Data, data...)
	}
	if err := p.Link(); err != nil {
		return nil, err
	}
	return p, nil
}

// mins wraps a machine instruction with transfer metadata used by the
// attachment and noop-replacement passes.
type mins struct {
	isa.Instr
	targetLabel string // static target of a transfer-carrying instruction
	isCond      bool   // transfer is the conditional via b[7]
	isCall      bool   // transfer is a call (carrier sits mid-block)
}

type mblock struct {
	irb *ir.Block
	ins []mins
}

// RA handling strategies.
type raMode int

const (
	raLeaf  raMode = iota // b[7] survives: return through it directly
	raBreg                // saved to a branch register at entry
	raStack               // spilled to the frame
)

type brmGen struct {
	g      *codegen.Gen
	f      *ir.Func
	cfg    Config
	caller []int // allocatable caller-saved branch registers
	callee []int // allocatable callee-saved branch registers
	allocs []*hoistAlloc
	mode   raMode
	raReg  int // raBreg: the register holding the return address
	blocks []*mblock
	cur    *mblock
	early  int // earliest position for local target calcs in cur
}

// GenBRMFunc compiles one function for the branch-register machine.
func GenBRMFunc(f *ir.Func, cfg Config) (*isa.Function, []*isa.DataItem, error) {
	m := codegen.BRMMachine()
	g := codegen.NewGen(&m, f)
	bg := &brmGen{g: g, f: f, cfg: cfg}
	bg.caller, bg.callee = cfg.allocatable()

	bg.planRA()
	bg.allocs = planHoisting(f, cfg, bg.caller, bg.callee)

	calleeBrs := usedCalleeBrs(bg.allocs)
	if bg.mode == raStack {
		g.ReserveSave("ra")
	}
	for _, b := range calleeBrs {
		g.ReserveSave(fmt.Sprintf("b%d", b))
	}
	g.Layout()

	for bi, b := range f.Blocks {
		next := ""
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1].Label
		}
		bg.cur = &mblock{irb: b}
		bg.blocks = append(bg.blocks, bg.cur)
		if bi == 0 {
			bg.prologue(calleeBrs)
		}
		bg.flush()
		bg.early = len(bg.cur.ins)
		// Hoisted calculations placed in this block (preheaders).
		for _, h := range bg.allocs {
			if h.place == b {
				bg.emitCalc(h.breg, h.target, h.isCall)
			}
		}
		bg.flush()
		bg.early = len(bg.cur.ins)
		for i := range b.Ins {
			in := &b.Ins[i]
			switch {
			case in.Kind == ir.OpCall:
				if err := bg.lowerCall(in); err != nil {
					return nil, nil, err
				}
			case in.Kind.IsTerm():
				if err := bg.lowerTerm(in, next, calleeBrs); err != nil {
					return nil, nil, err
				}
			default:
				if err := g.LowerIns(in); err != nil {
					return nil, nil, err
				}
			}
		}
		bg.flush()
	}

	bg.attachCarriers()
	if cfg.ReplaceNoops {
		bg.replaceNoops()
	}
	return bg.flatten(), g.Data, nil
}

// planRA picks the return-address strategy (paper §4: save b[7] when the
// routine has branches other than a return).
func (bg *brmGen) planRA() {
	f := bg.f
	hasTransfers := false
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Kind != ir.OpRet {
			hasTransfers = true
		}
		for i := range b.Ins {
			if b.Ins[i].Kind == ir.OpCall && !b.Ins[i].Builtin {
				hasTransfers = true
			}
		}
	}
	switch {
	case !hasTransfers:
		bg.mode = raLeaf
	case !bg.g.HasCalls && len(bg.caller) > 0:
		// Keep the return address in a caller-saved branch register for
		// the whole body (Figure 4's b[1]=b[7]); the register is removed
		// from the hoisting planner's pool.
		bg.mode = raBreg
		bg.raReg = bg.caller[len(bg.caller)-1]
		bg.caller = bg.caller[:len(bg.caller)-1]
	default:
		bg.mode = raStack
	}
}

// flush drains the shared generator's buffer into the current block.
func (bg *brmGen) flush() {
	for _, in := range bg.g.TakeBuf() {
		bg.cur.ins = append(bg.cur.ins, mins{Instr: in})
	}
}

// emit appends one instruction (with metadata) to the current block.
func (bg *brmGen) emit(m mins) {
	bg.flush()
	bg.cur.ins = append(bg.cur.ins, m)
}

// insertEarly places instructions at the earliest legal point of the block
// when scheduling is enabled (prefetch distance, Figure 9); otherwise
// appends.
func (bg *brmGen) insertEarly(ms ...mins) {
	bg.flush()
	if !bg.cfg.Schedule {
		bg.cur.ins = append(bg.cur.ins, ms...)
		return
	}
	pos := bg.early
	tail := append([]mins{}, bg.cur.ins[pos:]...)
	bg.cur.ins = append(bg.cur.ins[:pos], append(ms, tail...)...)
	bg.early += len(ms)
}

// emitCalc emits the target-address calculation for label/function target
// into branch register breg, at the current position.
func (bg *brmGen) emitCalc(breg int, target string, isCall bool) {
	if isCall {
		// Far form: two instructions (paper §4's global address calc).
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpSethi, Rd: bg.g.M.TmpReg, Target: target,
			Comment: "hi(" + target + ")"}})
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpBrCalc, Rd: breg, Rs1: bg.g.M.TmpReg,
			Target: target, Comment: "b[" + itoa(breg) + "]=&" + target}})
		return
	}
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpBrCalc, Rd: breg, Rs1: -1, Target: target,
		Comment: "b[" + itoa(breg) + "]=&" + target}})
}

// calcEarly emits a calculation at the block's early position.
func (bg *brmGen) calcEarly(breg int, target string, isCall bool) {
	if isCall {
		bg.insertEarly(
			mins{Instr: isa.Instr{Op: isa.OpSethi, Rd: bg.g.M.TmpReg, Target: target,
				Comment: "hi(" + target + ")"}},
			mins{Instr: isa.Instr{Op: isa.OpBrCalc, Rd: breg, Rs1: bg.g.M.TmpReg,
				Target: target, Comment: "b[" + itoa(breg) + "]=&" + target}})
		return
	}
	bg.insertEarly(mins{Instr: isa.Instr{Op: isa.OpBrCalc, Rd: breg, Rs1: -1, Target: target,
		Comment: "b[" + itoa(breg) + "]=&" + target}})
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// prologue emits frame setup plus the BRM-specific return-address and
// branch-register saves.
func (bg *brmGen) prologue(calleeBrs []int) {
	g := bg.g
	g.EmitPrologue()
	bg.flush()
	switch bg.mode {
	case raBreg:
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpMovBr, Rd: bg.raReg, BSrc: raBr,
			Comment: "save return address"}})
	case raStack:
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpMovRB, Rd: g.M.TmpReg, BSrc: raBr,
			Comment: "save return address"}})
		g.EmitSPMem(isa.OpSw, g.M.TmpReg, g.Frame.SaveOff["ra"], "spill return address")
		bg.flush()
	}
	for _, b := range calleeBrs {
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpMovRB, Rd: g.M.TmpReg, BSrc: b,
			Comment: fmt.Sprintf("save b%d", b)}})
		g.EmitSPMem(isa.OpSw, g.M.TmpReg, g.Frame.SaveOff[fmt.Sprintf("b%d", b)],
			fmt.Sprintf("spill b%d", b))
		bg.flush()
	}
}

// lowerCall emits a BRM call: target address in a branch register (hoisted
// or computed in the scratch register), argument moves, then a transfer
// carrier. The carrier rides on the last argument move when the attachment
// pass can merge it.
func (bg *brmGen) lowerCall(in *ir.Ins) error {
	g := bg.g
	if in.Builtin {
		if err := g.EmitBuiltin(in); err != nil {
			return err
		}
		bg.flush()
		return nil
	}
	h := lookupAlloc(bg.allocs, in.Sym, bg.cur.irb)
	breg := scratchBr
	if h != nil {
		breg = h.breg
	} else {
		bg.emitCalc(scratchBr, in.Sym, true)
	}
	g.EmitCallArgs(in)
	bg.flush()
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: breg,
		Comment: "call " + in.Sym}, targetLabel: in.Sym, isCall: true})
	g.EmitCallResult(in)
	bg.flush()
	// Local calcs must stay after the call (b[1] is caller-saved).
	bg.early = len(bg.cur.ins)
	return nil
}

// condBreg prepares the branch register holding the taken target of a
// conditional transfer.
func (bg *brmGen) condBreg(target string) int {
	if h := lookupAlloc(bg.allocs, target, bg.cur.irb); h != nil {
		return h.breg
	}
	bg.calcEarly(scratchBr, target, false)
	return scratchBr
}

// emitCmpBr emits the compare-with-assignment plus the conditional carrier.
// Under the fast-compare alternative (§9) the compare transfers directly
// and no carrier is needed.
func (bg *brmGen) emitCmpBr(cmp isa.Instr, target string) {
	if bg.cfg.FastCompare {
		cmp.BR = raBr
		cmp.Comment = joinComment(cmp.Comment, "fast compare, cond jump "+target)
		bg.emit(mins{Instr: cmp, targetLabel: target, isCond: true})
		return
	}
	bg.emit(mins{Instr: cmp})
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: raBr, Comment: "cond jump " + target},
		targetLabel: target, isCond: true})
}

// uncondTransfer emits an unconditional transfer to target.
func (bg *brmGen) uncondTransfer(target string) {
	if h := lookupAlloc(bg.allocs, target, bg.cur.irb); h != nil {
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: h.breg, Comment: "jump " + target},
			targetLabel: target})
		return
	}
	bg.calcEarly(scratchBr, target, false)
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: scratchBr, Comment: "jump " + target},
		targetLabel: target})
}

func (bg *brmGen) lowerTerm(t *ir.Ins, next string, calleeBrs []int) error {
	g := bg.g
	switch t.Kind {
	case ir.OpJump:
		if t.Targets[0] == next {
			return nil
		}
		bg.uncondTransfer(t.Targets[0])
		return nil

	case ir.OpBr, ir.OpBrF:
		cond := codegen.CondOf(t.Cond)
		trueL, falseL := t.Targets[0], t.Targets[1]
		if trueL == next {
			cond = cond.Negate()
			trueL, falseL = falseL, trueL
		}
		bsrc := bg.condBreg(trueL)
		var cmp isa.Instr
		if t.Kind == ir.OpBrF {
			ra := g.UseFloat(t.FA, 0)
			rb := g.UseFloat(t.FB, 1)
			cmp = isa.Instr{Op: isa.OpFCmpBr, Cond: cond, Rs1: ra, Rs2: rb, BSrc: bsrc}
		} else {
			ra := g.UseInt(t.A, 0)
			cmp = isa.Instr{Op: isa.OpCmpBr, Cond: cond, Rs1: ra, BSrc: bsrc}
			if t.UseImm {
				if g.M.FitsCmpImm(t.Imm) {
					cmp.UseImm = true
					cmp.Imm = int32(t.Imm)
				} else {
					g.MaterializeImm(g.M.Tmp2Reg, int32(t.Imm))
					cmp.Rs2 = g.M.Tmp2Reg
				}
			} else {
				cmp.Rs2 = g.UseInt(t.B, 1)
			}
		}
		bg.emitCmpBr(cmp, trueL)
		if falseL != next {
			bg.uncondTransferLate(falseL)
		}
		return nil

	case ir.OpSwitch:
		return bg.lowerSwitch(t, next)

	case ir.OpRet:
		g.RetValueMoves(t)
		bg.flush()
		retBr := raBr
		switch bg.mode {
		case raBreg:
			retBr = bg.raReg
		case raStack:
			g.EmitSPMem(isa.OpLw, g.M.TmpReg, g.Frame.SaveOff["ra"], "reload return address")
			bg.flush()
			bg.emit(mins{Instr: isa.Instr{Op: isa.OpMovBR, Rd: raBr, Rs1: g.M.TmpReg,
				Comment: "restore return address"}})
		}
		// Restore callee-saved branch registers.
		for _, b := range calleeBrs {
			g.EmitSPMem(isa.OpLw, g.M.TmpReg, g.Frame.SaveOff[fmt.Sprintf("b%d", b)],
				fmt.Sprintf("reload b%d", b))
			bg.flush()
			bg.emit(mins{Instr: isa.Instr{Op: isa.OpMovBR, Rd: b, Rs1: g.M.TmpReg,
				Comment: fmt.Sprintf("restore b%d", b)}})
		}
		g.EmitEpilogueRestores()
		bg.flush()
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: retBr, Comment: "return"}})
		return nil
	}
	return fmt.Errorf("core: unknown terminator %v", t.Kind)
}

// uncondTransferLate emits a transfer whose calculation may not move before
// the preceding conditional transfer (the fallthrough-path jump of a
// two-way branch with no fallthrough successor).
func (bg *brmGen) uncondTransferLate(target string) {
	if h := lookupAlloc(bg.allocs, target, bg.cur.irb); h != nil {
		bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: h.breg, Comment: "jump " + target},
			targetLabel: target})
		return
	}
	bg.emitCalc(scratchBr, target, false)
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: scratchBr, Comment: "jump " + target},
		targetLabel: target})
}

func (bg *brmGen) lowerSwitch(t *ir.Ins, next string) error {
	g := bg.g
	plan := g.PlanSwitch(t)
	bg.flush()
	v := g.UseInt(t.A, 0)
	bg.flush()
	if !plan.Dense {
		for _, c := range plan.Cases {
			bsrc := bg.condBreg(c.Target)
			cmp := isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondEQ, Rs1: v, BSrc: bsrc}
			if g.M.FitsCmpImm(c.Val) {
				cmp.UseImm = true
				cmp.Imm = int32(c.Val)
			} else {
				g.MaterializeImm(g.M.Tmp2Reg, int32(c.Val))
				cmp.Rs2 = g.M.Tmp2Reg
			}
			bg.emitCmpBr(cmp, c.Target)
			// b[1] may be needed again for the next case: allow later
			// calcs to be placed after this transfer.
			bg.early = len(bg.cur.ins)
		}
		if plan.Default != next {
			bg.uncondTransferLate(plan.Default)
		}
		return nil
	}
	// Dense table: range checks against the default, then an indirect load
	// of the target (paper §4's switch statement implementation).
	tmp := g.M.TmpReg
	g.AddImm(tmp, v, int32(-plan.Min))
	bg.flush()
	defBr := bg.condBreg(plan.Default)
	bg.emitCmpBr(isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondGT, Rs1: tmp, BSrc: defBr,
		UseImm: true, Imm: int32(plan.Max - plan.Min)}, plan.Default)
	bg.early = len(bg.cur.ins)
	// The register still holds the default target (the first check's
	// carrier touches only b[7]), so the second check reuses it.
	bg.emitCmpBr(isa.Instr{Op: isa.OpCmpBr, Cond: isa.CondLT, Rs1: tmp, BSrc: defBr,
		UseImm: true, Imm: 0}, plan.Default)
	bg.early = len(bg.cur.ins)
	g.Emit(isa.Instr{Op: isa.OpSll, Rd: tmp, Rs1: tmp, UseImm: true, Imm: 2})
	g.MaterializeAddr(g.M.Tmp2Reg, plan.TableLabel, 0)
	g.Emit(isa.Instr{Op: isa.OpAdd, Rd: g.M.Tmp2Reg, Rs1: g.M.Tmp2Reg, Rs2: tmp})
	bg.flush()
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpBrLd, Rd: scratchBr, Rs1: g.M.Tmp2Reg,
		UseImm: true, Imm: 0, Comment: "load switch target"}})
	bg.emit(mins{Instr: isa.Instr{Op: isa.OpNop, BR: scratchBr, Comment: "switch dispatch"}})
	return nil
}
