// Package core implements the paper's contribution: the code generator for
// the branch-register machine, including the compiler optimizations of
// paper §5 —
//
//   - branch target address calculations as separate instructions,
//   - frequency-ordered hoisting of those calculations into loop
//     preheaders (so the cost of branches inside loops disappears),
//   - branch-register allocation with scope interference and the
//     scratch/non-scratch distinction across calls,
//   - replacement of noop transfer carriers with pending target
//     calculations, and
//   - early placement of target calculations for prefetch distance
//     (paper Figure 9).
package core

import (
	"sort"

	"branchreg/internal/ir"
)

// Branch-register roles. b[0] is the PC and b[7] the return-address/trash
// register (paper §4). b[1] is the local scratch the code generator uses
// for non-hoisted target calculations; the rest are allocatable.
const (
	pcBr      = 0
	scratchBr = 1
	raBr      = 7
)

// Config controls the BRM code generator, primarily for the paper's
// ablation studies (§9: varying the number of branch registers, and
// enabling/disabling each optimization).
type Config struct {
	// Hoist moves branch target calculations of branches inside loops to
	// the loop preheaders (§5). Without it every transfer calculates its
	// target just before use.
	Hoist bool
	// ReplaceNoops fills noop transfer carriers with branch target
	// calculations pending in successor blocks (§5).
	ReplaceNoops bool
	// Schedule places local target calculations as early in the block as
	// dependences allow, to satisfy the two-instruction prefetch distance
	// (Figure 9). Without it calculations sit immediately before their
	// transfer.
	Schedule bool
	// BranchRegs is the number of implemented branch registers (2..8).
	// b[0] and b[7] are always reserved; with 8 registers b[1] is scratch,
	// b[2..3] caller-saved and b[4..6] callee-saved allocatable.
	BranchRegs int
	// FastCompare implements the §9 "fast compare" alternative: the
	// compare tests its condition early enough to update the program
	// counter directly, so the conditional transfer needs no separate
	// instruction (the compare itself carries the branch-register field).
	FastCompare bool
}

// DefaultConfig enables every optimization with the paper's 8 branch
// registers.
var DefaultConfig = Config{Hoist: true, ReplaceNoops: true, Schedule: true, BranchRegs: 8}

// allocatable returns the caller-saved and callee-saved allocatable branch
// registers under the configuration.
func (c Config) allocatable() (caller, callee []int) {
	n := c.BranchRegs
	if n > 8 {
		n = 8
	}
	// Reserved: b0 (PC), b7 (RA), b1 (scratch). Remaining: b2..b(n-2)
	// among 2..6, first two caller-saved, rest callee-saved.
	var avail []int
	for b := 2; b <= 6 && b <= n-2; b++ {
		avail = append(avail, b)
	}
	for i, b := range avail {
		if i < 2 {
			caller = append(caller, b)
		} else {
			callee = append(callee, b)
		}
	}
	return caller, callee
}

// calleeSavedBr reports whether b must be preserved across calls.
func calleeSavedBr(b int) bool { return b >= 4 && b <= 6 }

// hoistAlloc is one branch target calculation assigned to a branch
// register and hoisted to a loop preheader.
type hoistAlloc struct {
	target string   // code label (block label or function name)
	isCall bool     // target is a function (two-instruction far calc)
	breg   int      // assigned branch register
	loop   *ir.Loop // scope: the calc's value is live throughout this loop
	place  *ir.Block
	freq   int64
}

// covers reports whether the allocation provides target t to block b.
func (h *hoistAlloc) covers(t string, b *ir.Block) bool {
	return h.target == t && (h.loop.Blocks[b] || h.place == b)
}

// scopeBlocks returns the blocks where the allocation's branch register is
// live (loop body plus the preheader holding the calc).
func (h *hoistAlloc) scopeBlocks() map[*ir.Block]bool {
	out := map[*ir.Block]bool{h.place: true}
	for b := range h.loop.Blocks {
		out[b] = true
	}
	return out
}

// targetUse is one (transfer, constant target) pair found in the function.
type targetUse struct {
	target string
	isCall bool
	block  *ir.Block
}

// collectUses enumerates every constant branch target referenced by the
// function: jump targets, taken conditional targets, switch range-check
// defaults, and call targets.
func collectUses(f *ir.Func) []targetUse {
	var uses []targetUse
	for bi, b := range f.Blocks {
		for i := range b.Ins {
			in := &b.Ins[i]
			if in.Kind == ir.OpCall && !in.Builtin {
				uses = append(uses, targetUse{target: in.Sym, isCall: true, block: b})
			}
		}
		t := b.Term()
		if t == nil {
			continue
		}
		next := ""
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1].Label
		}
		switch t.Kind {
		case ir.OpJump:
			if t.Targets[0] != next {
				uses = append(uses, targetUse{target: t.Targets[0], block: b})
			}
		case ir.OpBr, ir.OpBrF:
			taken, other := effCondTargets(t, next)
			uses = append(uses, targetUse{target: taken, block: b})
			if other != "" {
				uses = append(uses, targetUse{target: other, block: b})
			}
		case ir.OpSwitch:
			if len(t.Cases) > 0 {
				uses = append(uses, targetUse{target: t.Targets[0], block: b})
			} else if t.Targets[0] != next {
				uses = append(uses, targetUse{target: t.Targets[0], block: b})
			}
		}
	}
	return uses
}

// effCondTargets mirrors the emission decision for a conditional branch:
// the compare's taken path goes out of line and the other path falls
// through (or needs an extra unconditional transfer, returned as other).
func effCondTargets(t *ir.Ins, next string) (taken, other string) {
	trueL, falseL := t.Targets[0], t.Targets[1]
	if trueL == next {
		trueL, falseL = falseL, trueL
	}
	if falseL != next {
		return trueL, falseL
	}
	return trueL, ""
}

// planHoisting implements paper §5: order branch targets by the estimated
// frequency of the branches to them, move the highest-frequency target
// calculation to the preheader of the innermost loop containing the
// branch, allocate a branch register (non-scratch when the loop contains
// calls), then iteratively try to move each placed calculation further
// out.
func planHoisting(f *ir.Func, cfg Config, caller, callee []int) []*hoistAlloc {
	if !cfg.Hoist {
		return nil
	}
	if len(caller)+len(callee) == 0 {
		return nil
	}

	type candidate struct {
		target string
		isCall bool
		loop   *ir.Loop
		freq   int64
	}
	// Group uses by (target, innermost loop of the use block).
	byKey := map[string]*candidate{}
	var order []string
	for _, u := range collectUses(f) {
		l := u.block.InLoop
		if l == nil {
			continue
		}
		key := u.target + "@" + l.Header.Label
		c := byKey[key]
		if c == nil {
			c = &candidate{target: u.target, isCall: u.isCall, loop: l}
			byKey[key] = c
			order = append(order, key)
		}
		c.freq += u.block.Freq
	}
	var cands []*candidate
	for _, k := range order {
		cands = append(cands, byKey[k])
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].freq > cands[j].freq })

	var allocs []*hoistAlloc
	scopesOf := map[int][]map[*ir.Block]bool{} // breg -> allocated scopes

	overlaps := func(a, b map[*ir.Block]bool) bool {
		for blk := range a {
			if b[blk] {
				return true
			}
		}
		return false
	}
	tryAssign := func(scope map[*ir.Block]bool, hasCall bool) int {
		var pools [][]int
		if hasCall {
			pools = [][]int{callee}
		} else {
			pools = [][]int{caller, callee}
		}
		for _, pool := range pools {
			for _, b := range pool {
				ok := true
				for _, s := range scopesOf[b] {
					if overlaps(s, scope) {
						ok = false
						break
					}
				}
				if ok {
					return b
				}
			}
		}
		return -1
	}

	for _, c := range cands {
		loop := c.loop
		if loop.Preheader == nil {
			continue
		}
		h := &hoistAlloc{target: c.target, isCall: c.isCall, loop: loop,
			place: loop.Preheader, freq: c.freq}
		scope := h.scopeBlocks()
		// The register must survive every call in its live range — both
		// calls inside the loop and calls in the preheader holding the
		// calculation (the calc is placed at the preheader's start).
		breg := tryAssign(scope, loop.HasCall || blockHasCall(loop.Preheader))
		if breg < 0 {
			continue
		}
		h.breg = breg
		scopesOf[breg] = append(scopesOf[breg], scope)
		allocs = append(allocs, h)

		// Iteratively extend outward: move the calculation to the parent
		// loop's preheader while the register stays legal (paper §5's
		// re-estimation step).
		for {
			outer := h.place.InLoop
			if outer == nil || outer.Preheader == nil || outer == h.loop {
				break
			}
			if (outer.HasCall || blockHasCall(outer.Preheader)) && !calleeSavedBr(h.breg) {
				break
			}
			extScope := map[*ir.Block]bool{outer.Preheader: true}
			for b := range outer.Blocks {
				extScope[b] = true
			}
			// The extended scope must not collide with other allocations
			// of the same register.
			ok := true
			for _, s := range scopesOf[h.breg] {
				if sameScope(s, h) {
					continue
				}
				if overlaps(s, extScope) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			// Replace the recorded scope.
			replaceScope(scopesOf, h, extScope)
			h.loop = outer
			h.place = outer.Preheader
			h.freq = outer.Preheader.Freq
		}
	}
	return allocs
}

// sameScope identifies the scope entry belonging to h (by its preheader).
func sameScope(s map[*ir.Block]bool, h *hoistAlloc) bool {
	if !s[h.place] {
		return false
	}
	for b := range h.loop.Blocks {
		if !s[b] {
			return false
		}
	}
	return true
}

func replaceScope(scopesOf map[int][]map[*ir.Block]bool, h *hoistAlloc, ext map[*ir.Block]bool) {
	ss := scopesOf[h.breg]
	for i, s := range ss {
		if sameScope(s, h) {
			ss[i] = ext
			return
		}
	}
	scopesOf[h.breg] = append(ss, ext)
}

// blockHasCall reports whether the block contains a non-builtin call.
func blockHasCall(b *ir.Block) bool {
	for i := range b.Ins {
		if b.Ins[i].Kind == ir.OpCall && !b.Ins[i].Builtin {
			return true
		}
	}
	return false
}

// lookupAlloc finds an allocation covering target t at block b.
func lookupAlloc(allocs []*hoistAlloc, t string, b *ir.Block) *hoistAlloc {
	for _, h := range allocs {
		if h.covers(t, b) {
			return h
		}
	}
	return nil
}

// usedCalleeBrs returns the callee-saved branch registers used by the
// allocation plan, in increasing order (they need prologue saves).
func usedCalleeBrs(allocs []*hoistAlloc) []int {
	seen := map[int]bool{}
	for _, h := range allocs {
		if calleeSavedBr(h.breg) {
			seen[h.breg] = true
		}
	}
	var out []int
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}
