package core

import (
	"branchreg/internal/isa"
)

// writesBranchRegK reports whether the instruction writes branch register k.
func writesBranchRegK(in *isa.Instr, k int) bool {
	switch in.Op {
	case isa.OpBrCalc, isa.OpBrLd, isa.OpMovBr, isa.OpMovBR:
		return in.Rd == k
	case isa.OpCmpBr, isa.OpFCmpBr:
		return k == raBr
	}
	return false
}

// attachCarriers merges noop transfer carriers into the preceding
// instruction wherever legal: the previous instruction must not itself
// transfer, must not write the referenced branch register (the address
// must be computed before the reference, paper §8), and a conditional
// transfer must follow its compare (paper §4).
func (bg *brmGen) attachCarriers() {
	for _, blk := range bg.blocks {
		for i := 0; i < len(blk.ins); i++ {
			c := &blk.ins[i]
			if c.Op != isa.OpNop || c.BR == pcBr {
				continue
			}
			if i == 0 {
				continue
			}
			prev := &blk.ins[i-1]
			if prev.BR != pcBr || prev.Op == isa.OpNop {
				continue
			}
			if writesBranchRegK(&prev.Instr, c.BR) {
				continue
			}
			// The exit trap must not become a transfer (the program ends
			// there).
			if prev.Op == isa.OpTrap && prev.Imm == isa.TrapExit {
				continue
			}
			prev.BR = c.BR
			prev.targetLabel = c.targetLabel
			prev.isCond = c.isCond
			prev.isCall = c.isCall
			prev.Comment = joinComment(prev.Comment, c.Comment)
			blk.ins = append(blk.ins[:i], blk.ins[i+1:]...)
			i--
		}
	}
}

func joinComment(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "; " + b
}

// replaceNoops fills remaining noop carriers with branch target address
// calculations pending at the head of a successor block (paper §5: "the
// compiler attempts to replace no-operation instructions that occur at
// transfers of control with branch target address calculations").
func (bg *brmGen) replaceNoops() {
	byLabel := map[string]*mblock{}
	for _, blk := range bg.blocks {
		byLabel[blk.irb.Label] = blk
	}
	for bi, blk := range bg.blocks {
		for i := 0; i < len(blk.ins); i++ {
			c := &blk.ins[i]
			if c.Op != isa.OpNop || c.BR == pcBr || c.isCall {
				continue
			}
			// Only the block-terminating carrier may be filled: the
			// successor-block reasoning below is wrong for mid-block
			// transfers (switch range checks, two-way branches with no
			// fallthrough), whose "fallthrough" is the rest of their own
			// block.
			if i != len(blk.ins)-1 {
				continue
			}
			var pulled *mins
			if c.isCond {
				// Executes on both paths: only scratch calculations (dead
				// at every block entry) are safe. Candidates: the taken
				// target and the fallthrough block.
				var cands []*mblock
				if t := byLabel[c.targetLabel]; t != nil {
					cands = append(cands, t)
				}
				if bi+1 < len(bg.blocks) {
					cands = append(cands, bg.blocks[bi+1])
				}
				for _, s := range cands {
					if len(s.irb.Preds) != 1 || s.irb.Preds[0] != blk.irb {
						continue
					}
					if p := headCalc(s, true); p != nil {
						pulled = p
						s.ins = s.ins[1:]
						break
					}
				}
			} else if c.targetLabel != "" {
				// Executes only on the path into the target block.
				s := byLabel[c.targetLabel]
				if s != nil && len(s.irb.Preds) == 1 && s.irb.Preds[0] == blk.irb {
					if p := headCalc(s, false); p != nil && p.Rd != c.BR {
						pulled = p
						s.ins = s.ins[1:]
					}
				}
			}
			if pulled == nil {
				continue
			}
			pulled.BR = c.BR
			pulled.targetLabel = c.targetLabel
			pulled.isCond = c.isCond
			pulled.Comment = joinComment(pulled.Comment, "replaces noop")
			blk.ins[i] = *pulled
		}
	}
}

// headCalc returns the first instruction of the block if it is a
// PC-relative target calculation eligible for pulling (scratchOnly
// restricts to the scratch register, required when the pull executes on
// both paths of a conditional).
func headCalc(blk *mblock, scratchOnly bool) *mins {
	if len(blk.ins) == 0 {
		return nil
	}
	h := blk.ins[0]
	if h.Op != isa.OpBrCalc || h.Rs1 >= 0 || h.BR != pcBr {
		return nil
	}
	if scratchOnly && h.Rd != scratchBr {
		return nil
	}
	return &h
}

// flatten converts the block list into a linkable function.
func (bg *brmGen) flatten() *isa.Function {
	out := isa.NewFunction(bg.f.Name, isa.BranchReg)
	for _, blk := range bg.blocks {
		out.Bind(blk.irb.Label)
		for _, m := range blk.ins {
			in := m.Instr
			// Carriers store their target in wrapper metadata, not in the
			// instruction; only calculation/branch ops carry symbol
			// targets into the linker.
			out.Emit(in)
		}
	}
	return out
}
