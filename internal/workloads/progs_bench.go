package workloads

// Benchmark-class and user-code workloads (Appendix I).

const srcDhrystone = `
// dhrystone: adaptation of the classic synthetic integer benchmark to MC
// (records become parallel arrays; the dynamic operation mix — assignments,
// control flow, calls, string compares — follows the original).
int IntGlob;
int BoolGlob;
char Ch1Glob;
char Ch2Glob;
int Arr1Glob[50];
int Arr2Glob[50][50];
char Str1[32];
char Str2[32];

// record "Glob": [0]=PtrComp(index), [1]=Discr, [2]=EnumComp, [3]=IntComp
int RecA[4];
int RecB[4];

int Func1(int ch1, int ch2) {
    char c1 = ch1;
    char c2 = c1;
    if (c2 != ch2) return 0; // Ident1
    return 1;
}

int Func2(char *s1, char *s2) {
    int i = 1;
    char c;
    while (i <= 1) {
        if (Func1(s1[i], s2[i + 1]) == 0) { c = 'A'; i++; }
        else break;
    }
    if (c >= 'W' && c <= 'Z') i = 7;
    if (c == 'R') return 1;
    if (streq(s1, s2)) { IntGlob = i + 7; return 1; }
    return 0;
}

int Func3(int e) { return e == 2; }

void Proc6(int e, int *out) {
    *out = e;
    if (!Func3(e)) *out = 3;
    if (e == 0) *out = 0;
    else if (e == 1) { if (IntGlob > 100) *out = 0; else *out = 3; }
    else if (e == 2) *out = 1;
    else if (e == 4) *out = 2;
}

void Proc7(int a, int b, int *out) { *out = a + 2 + b; }

void Proc8(int *a1, int *a2, int v1, int v2) {
    int i = v1 + 5;
    a1[i] = v2;
    a1[i + 1] = a1[i];
    a1[i + 30] = i;
    int j;
    for (j = i; j <= i + 1; j++) a2[i * 50 + j] = i;
    a2[i * 50 + i - 1] += 1;
    a2[(i + 20) * 50 + i] = a1[i];
    IntGlob = 5;
}

void Proc3(int *p) {
    if (RecA[0] != 0) *p = RecA[3];
    Proc7(10, IntGlob, RecA + 3);
}

void Proc1(int *rec) {
    int i;
    for (i = 0; i < 4; i++) RecB[i] = rec[i];
    rec[3] = 5;
    RecB[3] = rec[3];
    RecB[0] = rec[0];
    Proc3(RecB);
    if (RecB[1] == 0) { RecB[2] = 1; Proc6(6, RecB + 2); BoolGlob = 1; }
    else {
        for (i = 0; i < 4; i++) rec[i] = RecB[i];
    }
}

void Proc2(int *x) {
    int loc = *x + 10;
    for (;;) {
        if (Ch1Glob == 'A') { loc--; *x = loc - IntGlob; break; }
    }
}

void Proc4(void) {
    int b = Ch1Glob == 'A';
    b = b | BoolGlob;
    Ch2Glob = 'B';
}

void Proc5(void) { Ch1Glob = 'A'; BoolGlob = 0; }

void copystr(char *d, char *s) { while (*s) { *d = *s; d++; s++; } *d = 0; }

int main(void) {
    int run;
    int IntLoc1, IntLoc2, IntLoc3;
    copystr(Str1, "DHRYSTONE PROGRAM, 1ST STRING");
    for (run = 0; run < 600; run++) {
        Proc5();
        Proc4();
        IntLoc1 = 2;
        IntLoc2 = 3;
        copystr(Str2, "DHRYSTONE PROGRAM, 2ND STRING");
        BoolGlob = !Func2(Str1, Str2);
        while (IntLoc1 < IntLoc2) {
            IntLoc3 = 5 * IntLoc1 - IntLoc2;
            Proc7(IntLoc1, IntLoc2, &IntLoc3);
            IntLoc1++;
        }
        Proc8(Arr1Glob, (int *)Arr2Glob, IntLoc1, IntLoc3);
        RecA[0] = 1; RecA[1] = 0; RecA[2] = 2; RecA[3] = 17;
        Proc1(RecA);
        char CharIndex;
        for (CharIndex = 'A'; CharIndex <= Ch2Glob; CharIndex++)
            if (Func1(CharIndex, 'C')) Proc6(0, &IntLoc3);
        IntLoc3 = IntLoc2 * IntLoc1;
        IntLoc2 = IntLoc3 / 3;
        IntLoc2 = 7 * (IntLoc3 - IntLoc2) - IntLoc1;
        Proc2(&IntLoc1);
    }
    prints("done ");
    printi(IntGlob);
    printn();
    return 0;
}
`

const srcMatmult = `
// matmult: integer matrix multiplication with a checksum.
int A[24][24];
int B[24][24];
int C[24][24];

int main(void) {
    int i, j, k;
    int rep;
    for (i = 0; i < 24; i++)
        for (j = 0; j < 24; j++) {
            A[i][j] = (i * 7 + j * 3) % 13;
            B[i][j] = (i * 5 + j * 11) % 17;
        }
    int sum = 0;
    for (rep = 0; rep < 6; rep++) {
        for (i = 0; i < 24; i++)
            for (j = 0; j < 24; j++) {
                int s = 0;
                for (k = 0; k < 24; k++)
                    s += A[i][k] * B[k][j];
                C[i][j] = s;
            }
        sum = (sum + C[rep][rep]) % 100000;
    }
    prints("checksum ");
    printi(sum);
    printn();
    return 0;
}
`

const srcPuzzle = `
// puzzle: Baskett's bin-packing puzzle (recursion and array references).
int pieceCount[4];
int class[13];
int pieceMax[13];
int puzzl[512];
int p[13][512];
int count;
int kount;

int fit(int i, int j) {
    int k;
    for (k = 0; k <= pieceMax[i]; k++)
        if (p[i][k])
            if (puzzl[j + k]) return 0;
    return 1;
}

int place(int i, int j) {
    int k;
    for (k = 0; k <= pieceMax[i]; k++)
        if (p[i][k]) puzzl[j + k] = 1;
    pieceCount[class[i]] -= 1;
    for (k = j; k < 512; k++)
        if (!puzzl[k]) return k;
    return 0;
}

void removep(int i, int j) {
    int k;
    for (k = 0; k <= pieceMax[i]; k++)
        if (p[i][k]) puzzl[j + k] = 0;
    pieceCount[class[i]] += 1;
}

int trial(int j) {
    int i, k;
    kount++;
    for (i = 0; i < 13; i++)
        if (pieceCount[class[i]] != 0)
            if (fit(i, j)) {
                k = place(i, j);
                if (trial(k) || k == 0) return 1;
                removep(i, j);
            }
    return 0;
}

void definePiece(int index, int cl, int dx, int dy, int dz) {
    int i, j, k;
    class[index] = cl;
    for (i = 0; i <= dx; i++)
        for (j = 0; j <= dy; j++)
            for (k = 0; k <= dz; k++)
                p[index][i + 8 * (j + 8 * k)] = 1;
    pieceMax[index] = dx + 8 * (dy + 8 * dz);
}

int main(void) {
    int i, j, k, m;
    for (m = 0; m < 512; m++) puzzl[m] = 1;
    for (i = 1; i < 6; i++)
        for (j = 1; j < 6; j++)
            for (k = 1; k < 6; k++)
                puzzl[i + 8 * (j + 8 * k)] = 0;
    definePiece(0, 0, 3, 1, 0);
    definePiece(1, 0, 1, 0, 3);
    definePiece(2, 0, 0, 3, 1);
    definePiece(3, 0, 1, 3, 0);
    definePiece(4, 0, 3, 0, 1);
    definePiece(5, 0, 0, 1, 3);
    definePiece(6, 1, 2, 0, 0);
    definePiece(7, 1, 0, 2, 0);
    definePiece(8, 1, 0, 0, 2);
    definePiece(9, 2, 1, 1, 0);
    definePiece(10, 2, 1, 0, 1);
    definePiece(11, 2, 0, 1, 1);
    definePiece(12, 3, 1, 1, 1);
    pieceCount[0] = 13;
    pieceCount[1] = 3;
    pieceCount[2] = 1;
    pieceCount[3] = 1;
    m = 1 + 8 * (1 + 8);
    kount = 0;
    if (fit(0, m)) {
        int n = place(0, m);
        if (trial(n)) { prints("success in "); printi(kount); prints(" trials\n"); }
        else prints("failure\n");
    } else prints("no fit\n");
    return 0;
}
`

const srcSieve = `
// sieve: Eratosthenes, repeated.
char flags[8192];

int main(void) {
    int iter, i, k;
    int count = 0;
    for (iter = 0; iter < 40; iter++) {
        count = 0;
        for (i = 0; i < 8192; i++) flags[i] = 1;
        for (i = 2; i < 8192; i++)
            if (flags[i]) {
                for (k = i + i; k < 8192; k += i) flags[k] = 0;
                count++;
            }
    }
    prints("primes ");
    printi(count);
    printn();
    return 0;
}
`

const srcWhetstone = `
// whetstone: floating-point synthetic benchmark. Transcendental functions
// are polynomial approximations (the machines have no trig hardware), so
// the module mix (array ops, calls, conditional jumps, FP arithmetic)
// matches the original's flavor.
float e1[4];
int jj, kk, ll;
float t, t1, t2;

float fabs2(float x) { if (x < 0.0) return -x; return x; }

float sin2(float x) {
    while (x > 3.14159265) x -= 6.2831853;
    while (x < -3.14159265) x += 6.2831853;
    float x2 = x * x;
    return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)));
}

float cos2(float x) { return sin2(x + 1.57079633); }

float exp2f(float x) {
    // e^x for small |x| via series.
    float sum = 1.0;
    float term = 1.0;
    int i;
    for (i = 1; i < 12; i++) {
        term = term * x / (float)i;
        sum += term;
    }
    return sum;
}

float log2f(float x) {
    // ln(x) for x near 1 via atanh series.
    float y = (x - 1.0) / (x + 1.0);
    float y2 = y * y;
    float sum = 0.0;
    float term = y;
    int i;
    for (i = 1; i < 15; i += 2) {
        sum += term / (float)i;
        term = term * y2;
    }
    return 2.0 * sum;
}

float sqrt2(float x) {
    if (x <= 0.0) return 0.0;
    float g = x;
    int i;
    for (i = 0; i < 20; i++) g = 0.5 * (g + x / g);
    return g;
}

void pa(float *e) {
    int j = 0;
    do {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
        j++;
    } while (j < 6);
}

void p3(float x, float y, float *z) {
    x = t * (x + y);
    y = t * (x + y);
    *z = (x + y) / t2;
}

void p0(float *e) {
    e[jj] = e[kk];
    e[kk] = e[ll];
    e[ll] = e[jj];
}

int main(void) {
    int loop = 4;
    int n1 = 0, n2 = 12 * loop, n3 = 14 * loop, n4 = 345 * loop;
    int n6 = 210 * loop, n7 = 32 * loop, n8 = 899 * loop;
    int n9 = 616 * loop, n10 = 0, n11 = 93 * loop;
    float x1, x2, x3, x4, x, y, z;
    int i;
    t = 0.499975;
    t1 = 0.50025;
    t2 = 2.0;
    // module 1: simple identifiers
    x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
    for (i = 0; i < n1; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }
    // module 2: array elements
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < n2; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }
    // module 3: array as parameter
    for (i = 0; i < n3; i++) pa(e1);
    // module 4: conditional jumps
    int j = 1;
    for (i = 0; i < n4; i++) {
        if (j == 1) j = 2; else j = 3;
        if (j > 2) j = 0; else j = 1;
        if (j < 1) j = 1; else j = 0;
    }
    // module 6: integer arithmetic
    jj = 1; kk = 2; ll = 3;
    for (i = 0; i < n6; i++) {
        jj = jj * (kk - jj) * (ll - kk);
        kk = ll * kk - (ll - jj) * kk;
        ll = (ll - kk) * (kk + jj);
        e1[ll - 2] = (float)(jj + kk + ll);
        e1[kk - 2] = (float)(jj * kk * ll);
    }
    // module 7: trigonometric functions
    x = 0.5; y = 0.5;
    for (i = 0; i < n7; i++) {
        x = t * atan2ish(x, y);
        y = t * atan2ish(y, x);
    }
    // module 8: procedure calls
    x = 1.0; y = 1.0; z = 1.0;
    for (i = 0; i < n8; i++) p3(x, y, &z);
    // module 9: array references via globals
    jj = 0; kk = 1; ll = 2;
    e1[0] = 1.0; e1[1] = 2.0; e1[2] = 3.0;
    for (i = 0; i < n9; i++) p0(e1);
    // module 10: integer arithmetic
    int ij = 2, ik = 3;
    for (i = 0; i < n10; i++) {
        ij = ik - ij;
        ik = ik - ij;
    }
    // module 11: standard functions
    x = 0.75;
    for (i = 0; i < n11; i++)
        x = sqrt2(exp2f(log2f(x) / t1));
    prints("x ");
    printi((int)(x * 1000.0));
    prints(" z ");
    printi((int)(z * 1000.0));
    printn();
    return 0;
}

float atan2ish(float a, float b) {
    // 2*sin(a)*cos(b) flavored stand-in keeping the call+FP mix.
    return t2 * sin2(a) * cos2(b);
}
`

const srcSpline = `
// spline: natural cubic spline through fixed knots, evaluated densely.
float xs[12];
float ys[12];
float h[12];
float alpha[12];
float l[12];
float mu[12];
float zz[12];
float c[12];
float b[12];
float d[12];

int main(void) {
    int n = 11;
    int i;
    for (i = 0; i <= n; i++) {
        xs[i] = (float)i;
        float v = (float)(i * i % 7) - 3.0;
        ys[i] = v * 0.5;
    }
    for (i = 0; i < n; i++) h[i] = xs[i + 1] - xs[i];
    for (i = 1; i < n; i++)
        alpha[i] = 3.0 * (ys[i + 1] - ys[i]) / h[i] - 3.0 * (ys[i] - ys[i - 1]) / h[i - 1];
    l[0] = 1.0; mu[0] = 0.0; zz[0] = 0.0;
    for (i = 1; i < n; i++) {
        l[i] = 2.0 * (xs[i + 1] - xs[i - 1]) - h[i - 1] * mu[i - 1];
        mu[i] = h[i] / l[i];
        zz[i] = (alpha[i] - h[i - 1] * zz[i - 1]) / l[i];
    }
    l[n] = 1.0; zz[n] = 0.0; c[n] = 0.0;
    for (i = n - 1; i >= 0; i--) {
        c[i] = zz[i] - mu[i] * c[i + 1];
        b[i] = (ys[i + 1] - ys[i]) / h[i] - h[i] * (c[i + 1] + 2.0 * c[i]) / 3.0;
        d[i] = (c[i + 1] - c[i]) / (3.0 * h[i]);
    }
    // Evaluate at many points; accumulate a checksum.
    float sum = 0.0;
    int rep;
    for (rep = 0; rep < 200; rep++) {
        int k;
        for (k = 0; k < 1000; k++) {
            float x = (float)k * 0.011;
            int seg = (int)x;
            if (seg > n - 1) seg = n - 1;
            float dx = x - xs[seg];
            float y = ys[seg] + dx * (b[seg] + dx * (c[seg] + dx * d[seg]));
            sum += y;
        }
    }
    prints("sum ");
    printi((int)sum);
    printn();
    return 0;
}
`

const srcMincost = `
// mincost: VLSI circuit partitioning by greedy min-cut improvement
// (Kernighan-Lin flavored) on a synthetic netlist.
int adj[64][64];
int side[64];
int gain[64];

int seed;
int rnd(int mod) {
    seed = seed * 1103515245 + 12345;
    int v = (seed >> 16) % mod;
    if (v < 0) v += mod;
    return v;
}

int cutsize(void) {
    int cut = 0;
    int i, j;
    for (i = 0; i < 64; i++)
        for (j = i + 1; j < 64; j++)
            if (adj[i][j] && side[i] != side[j]) cut += adj[i][j];
    return cut;
}

void computeGains(void) {
    int i, j;
    for (i = 0; i < 64; i++) {
        int g = 0;
        for (j = 0; j < 64; j++)
            if (adj[i][j]) {
                if (side[i] != side[j]) g += adj[i][j];
                else g -= adj[i][j];
            }
        gain[i] = g;
    }
}

int main(void) {
    int i, j;
    seed = 7;
    // synthetic netlist: ring + random chords
    for (i = 0; i < 64; i++) {
        adj[i][(i + 1) % 64] = 1;
        adj[(i + 1) % 64][i] = 1;
    }
    for (i = 0; i < 96; i++) {
        int a = rnd(64);
        int c = rnd(64);
        if (a != c) { adj[a][c] = 1 + rnd(3); adj[c][a] = adj[a][c]; }
    }
    for (i = 0; i < 64; i++) side[i] = i & 1;
    int best = cutsize();
    int pass;
    for (pass = 0; pass < 24; pass++) {
        computeGains();
        // pick the best swap pair across the cut
        int bi = -1, bj = -1, bg = 0;
        for (i = 0; i < 64; i++)
            for (j = 0; j < 64; j++)
                if (side[i] == 0 && side[j] == 1) {
                    int g = gain[i] + gain[j] - 2 * adj[i][j];
                    if (g > bg) { bg = g; bi = i; bj = j; }
                }
        if (bi < 0) break;
        side[bi] = 1;
        side[bj] = 0;
        int now = cutsize();
        if (now < best) best = now;
    }
    prints("mincut ");
    printi(best);
    printn();
    return 0;
}
`

const srcTinycc = `
// tinycc: a small expression compiler standing in for vpcc — it tokenizes,
// parses (recursive descent), emits stack-machine code, then interprets
// the code. Compiler-shaped control flow: switches, recursion, tables.
char line[128];
int pos;

int code[256];
int ncode;

// opcodes: 0 push (arg follows), 1 add, 2 sub, 3 mul, 4 div, 5 rem, 6 neg
void emit(int op) { code[ncode] = op; ncode++; }
void emitPush(int v) { emit(0); emit(v); }

int peekc(void) {
    while (line[pos] == ' ') pos++;
    return line[pos];
}

int parsePrimary(void) {
    int c = peekc();
    if (c == '(') {
        pos++;
        if (!parseExpr()) return 0;
        if (peekc() != ')') return 0;
        pos++;
        return 1;
    }
    if (c == '-') {
        pos++;
        if (!parsePrimary()) return 0;
        emit(6);
        return 1;
    }
    if (c >= '0' && c <= '9') {
        int v = 0;
        while (line[pos] >= '0' && line[pos] <= '9') {
            v = v * 10 + line[pos] - '0';
            pos++;
        }
        emitPush(v);
        return 1;
    }
    return 0;
}

int parseTerm(void) {
    if (!parsePrimary()) return 0;
    for (;;) {
        int c = peekc();
        if (c == '*' || c == '/' || c == '%') {
            pos++;
            if (!parsePrimary()) return 0;
            switch (c) {
            case '*': emit(3); break;
            case '/': emit(4); break;
            default: emit(5); break;
            }
        } else return 1;
    }
}

int parseExpr(void) {
    if (!parseTerm()) return 0;
    for (;;) {
        int c = peekc();
        if (c == '+' || c == '-') {
            pos++;
            if (!parseTerm()) return 0;
            if (c == '+') emit(1); else emit(2);
        } else return 1;
    }
}

int stack[64];

int run(void) {
    int sp = 0;
    int i = 0;
    while (i < ncode) {
        switch (code[i]) {
        case 0: stack[sp] = code[i + 1]; sp++; i += 2; break;
        case 1: sp--; stack[sp - 1] += stack[sp]; i++; break;
        case 2: sp--; stack[sp - 1] -= stack[sp]; i++; break;
        case 3: sp--; stack[sp - 1] *= stack[sp]; i++; break;
        case 4: sp--; if (stack[sp]) stack[sp - 1] /= stack[sp]; i++; break;
        case 5: sp--; if (stack[sp]) stack[sp - 1] %= stack[sp]; i++; break;
        case 6: stack[sp - 1] = -stack[sp - 1]; i++; break;
        default: return 0;
        }
    }
    return stack[0];
}

int main(void) {
    int iter;
    for (iter = 0; iter < 60; iter++) {
        // reread the program text each iteration is impossible (stdin is a
        // stream), so only iterate computation on the parsed programs in
        // the first pass; here we simply re-run the interpreter.
        ;
    }
    while (readline(line, 128) >= 0) {
        pos = 0;
        ncode = 0;
        if (!parseExpr() || peekc() != 0) {
            prints("error\n");
            continue;
        }
        int r = 0;
        for (iter = 0; iter < 50; iter++) r = run();
        printi(r);
        printn();
    }
    return 0;
}
`
