package workloads

// Unix-utility workloads (Appendix I, class "Utilities").

const srcCal = `
// cal: print calendars for 12 months of 1990 (the paper's year).
int daysin[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
char names[60] = "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec ";

int dayofweek(int y, int m, int d) {
    // Zeller's congruence, 1-based month, returns 0=Saturday.
    int adj;
    if (m < 3) { m += 12; y -= 1; }
    adj = (d + (13 * (m + 1)) / 5 + y + y / 4 - y / 100 + y / 400) % 7;
    return adj;
}

void pad(int n) { while (n-- > 0) putchar(' '); }

void month(int y, int m) {
    int i;
    for (i = 0; i < 4; i++) putchar(names[(m - 1) * 4 + i]);
    printi(y);
    printn();
    prints("Su Mo Tu We Th Fr Sa\n");
    int start = (dayofweek(y, m, 1) + 6) % 7; // 0=Sunday
    int days = daysin[m - 1];
    if (m == 2 && (y % 4 == 0 && y % 100 != 0 || y % 400 == 0)) days = 29;
    pad(start * 3);
    int col = start;
    for (i = 1; i <= days; i++) {
        if (i < 10) putchar(' ');
        printi(i);
        col++;
        if (col == 7) { printn(); col = 0; }
        else putchar(' ');
    }
    if (col != 0) printn();
    printn();
}

int main(void) {
    int m;
    int pass;
    for (pass = 0; pass < 12; pass++)
        for (m = 1; m <= 12; m++)
            month(1990, m);
    return 0;
}
`

const srcCb = `
// cb: re-indent brace-structured text.
char line[256];

int main(void) {
    int depth = 0;
    int n;
    while ((n = readline(line, 256)) >= 0) {
        int i = 0;
        while (line[i] == ' ' || line[i] == '\t') i++;
        int opens = 0, closes = 0;
        int j;
        for (j = i; line[j]; j++) {
            if (line[j] == '{') opens++;
            if (line[j] == '}') closes++;
        }
        int d = depth;
        if (line[i] == '}') d--;
        if (d < 0) d = 0;
        for (j = 0; j < d * 4; j++) putchar(' ');
        for (j = i; line[j]; j++) putchar(line[j]);
        printn();
        depth += opens - closes;
        if (depth < 0) depth = 0;
    }
    return 0;
}
`

const srcCompact = `
// compact: run-length + move-to-front byte compression of the input.
char mtf[256];
char buf[8192];

int main(void) {
    int len = 0;
    int c;
    while ((c = getchar()) != -1 && len < 8192) { buf[len] = c; len++; }
    int i;
    for (i = 0; i < 256; i++) mtf[i] = i;
    int outbytes = 0;
    int run = 0;
    int prev = -1;
    for (i = 0; i < len; i++) {
        int b = buf[i] & 255;
        if (b == prev && run < 255) { run++; continue; }
        if (run > 2) { printi(run); putchar(':'); outbytes += 2; }
        run = 1;
        prev = b;
        // move-to-front index
        int j = 0;
        while ((mtf[j] & 255) != b) j++;
        int k;
        for (k = j; k > 0; k--) mtf[k] = mtf[k - 1];
        mtf[0] = b;
        if (j < 16) { putchar('a' + j); outbytes++; }
        else { putchar('#'); printi(j); outbytes += 3; }
    }
    printn();
    prints("in "); printi(len); prints(" out "); printi(outbytes); printn();
    return 0;
}
`

const srcDiff = `
// diff: longest-common-subsequence difference of two line lists separated
// by a %% marker.
char text[8192];
int astart[128];
int bstart[128];
int lcs[129][129];
char line[128];

int lineeq(char *a, char *b) {
    while (*a && *a != '\n' && *b && *b != '\n' && *a == *b) { a++; b++; }
    int ea = (*a == 0 || *a == '\n');
    int eb = (*b == 0 || *b == '\n');
    return ea && eb;
}

void putline(char *p) {
    while (*p && *p != '\n') { putchar(*p); p++; }
    printn();
}

int main(void) {
    int na = 0, nb = 0;
    int pos = 0;
    int second = 0;
    int n;
    while ((n = readline(line, 128)) >= 0) {
        if (line[0] == '%' && line[1] == '%') { second = 1; continue; }
        int i;
        if (second) { bstart[nb] = pos; nb++; }
        else { astart[na] = pos; na++; }
        for (i = 0; i < n; i++) { text[pos] = line[i]; pos++; }
        text[pos] = '\n'; pos++;
    }
    int i, j;
    for (i = na - 1; i >= 0; i--)
        for (j = nb - 1; j >= 0; j--) {
            if (lineeq(text + astart[i], text + bstart[j]))
                lcs[i][j] = lcs[i + 1][j + 1] + 1;
            else if (lcs[i + 1][j] >= lcs[i][j + 1])
                lcs[i][j] = lcs[i + 1][j];
            else
                lcs[i][j] = lcs[i][j + 1];
        }
    i = 0; j = 0;
    while (i < na && j < nb) {
        if (lineeq(text + astart[i], text + bstart[j])) { i++; j++; }
        else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
            prints("< "); putline(text + astart[i]); i++;
        } else {
            prints("> "); putline(text + bstart[j]); j++;
        }
    }
    while (i < na) { prints("< "); putline(text + astart[i]); i++; }
    while (j < nb) { prints("> "); putline(text + bstart[j]); j++; }
    return 0;
}
`

const srcGrep = `
// grep: print lines containing the pattern given on the first input line.
// '.' in the pattern matches any character.
char pat[128];
char line[256];

int matchhere(char *p, char *s) {
    for (; *p; p++) {
        if (*s == 0) return 0;
        if (*p != '.' && *p != *s) return 0;
        s++;
    }
    return 1;
}

int match(char *p, char *s) {
    for (; *s; s++)
        if (matchhere(p, s)) return 1;
    return 0;
}

int main(void) {
    if (readline(pat, 128) < 0) return 1;
    int matched = 0;
    while (readline(line, 256) >= 0) {
        if (match(pat, line)) {
            prints(line);
            printn();
            matched++;
        }
    }
    return matched == 0;
}
`

const srcNroff = `
// nroff: fill and left-justify text to a 48-column measure.
char word[64];
char line[256];

int outcol;

void flushline(void) { if (outcol > 0) { printn(); outcol = 0; } }

void putword(char *w) {
    int n = slen(w);
    if (n == 0) return;
    if (outcol > 0 && outcol + 1 + n > 48) flushline();
    if (outcol > 0) { putchar(' '); outcol++; }
    prints(w);
    outcol += n;
}

int main(void) {
    int n;
    while ((n = readline(line, 256)) >= 0) {
        if (n == 0) { flushline(); printn(); continue; }
        int i = 0;
        while (line[i]) {
            while (line[i] == ' ' || line[i] == '\t') i++;
            int k = 0;
            while (line[i] && line[i] != ' ' && line[i] != '\t' && k < 63) {
                word[k] = line[i];
                k++; i++;
            }
            word[k] = 0;
            putword(word);
        }
    }
    flushline();
    return 0;
}
`

const srcOd = `
// od: octal dump of the input.
char chunk[16];

void oct3(int v) {
    putchar('0' + ((v >> 6) & 7));
    putchar('0' + ((v >> 3) & 7));
    putchar('0' + (v & 7));
}

void oct7(int v) {
    int i;
    for (i = 18; i >= 0; i -= 3) putchar('0' + ((v >> i) & 7));
}

int main(void) {
    int off = 0;
    int c;
    int n = 0;
    for (;;) {
        c = getchar();
        if (c != -1) { chunk[n] = c; n++; }
        if (n == 16 || (c == -1 && n > 0)) {
            oct7(off);
            int i;
            for (i = 0; i < n; i++) { putchar(' '); oct3(chunk[i] & 255); }
            printn();
            off += n;
            n = 0;
        }
        if (c == -1) break;
    }
    oct7(off);
    printn();
    return 0;
}
`

const srcSed = `
// sed: substitute the first input line's string with the second's in the
// remaining lines (s/from/to/g).
char from[64];
char to[64];
char line[256];

int main(void) {
    if (readline(from, 64) < 0) return 1;
    if (readline(to, 64) < 0) return 1;
    int flen = slen(from);
    while (readline(line, 256) >= 0) {
        char *s = line;
        while (*s) {
            int i = 0;
            while (from[i] && s[i] == from[i]) i++;
            if (flen > 0 && from[i] == 0) {
                prints(to);
                s += flen;
            } else {
                putchar(*s);
                s++;
            }
        }
        printn();
    }
    return 0;
}
`

const srcSort = `
// sort: read lines, quicksort them, print in order.
char text[8192];
int start[256];
int nlines;

int cmp(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    if (*a == *b) return 0;
    if ((*a & 255) < (*b & 255)) return -1;
    return 1;
}

void qsortlines(int lo, int hi) {
    if (lo >= hi) return;
    int pivot = start[(lo + hi) / 2];
    int i = lo, j = hi;
    while (i <= j) {
        while (cmp(text + start[i], text + pivot) < 0) i++;
        while (cmp(text + start[j], text + pivot) > 0) j--;
        if (i <= j) {
            int t = start[i];
            start[i] = start[j];
            start[j] = t;
            i++; j--;
        }
    }
    qsortlines(lo, j);
    qsortlines(i, hi);
}

int main(void) {
    int pos = 0;
    char line[128];
    int n;
    while ((n = readline(line, 128)) >= 0 && nlines < 256) {
        start[nlines] = pos;
        nlines++;
        int i;
        for (i = 0; i <= n; i++) { text[pos] = line[i]; pos++; }
    }
    qsortlines(0, nlines - 1);
    int i;
    for (i = 0; i < nlines; i++) {
        prints(text + start[i]);
        printn();
    }
    return 0;
}
`

const srcTr = `
// tr: translate characters of the input according to two mapping lines.
char from[128];
char to[128];
char map[256];

int main(void) {
    if (readline(from, 128) < 0) return 1;
    if (readline(to, 128) < 0) return 1;
    int i;
    for (i = 0; i < 256; i++) map[i] = i;
    for (i = 0; from[i] && to[i]; i++) map[from[i] & 255] = to[i];
    int c;
    while ((c = getchar()) != -1) putchar(map[c & 255] & 255);
    return 0;
}
`

const srcWc = `
// wc: count lines, words and characters.
int main(void) {
    int lines = 0, words = 0, chars = 0;
    int inword = 0;
    int c;
    while ((c = getchar()) != -1) {
        chars++;
        if (c == '\n') lines++;
        if (c == ' ' || c == '\t' || c == '\n') inword = 0;
        else if (!inword) { inword = 1; words++; }
    }
    printi(lines); putchar(' ');
    printi(words); putchar(' ');
    printi(chars); printn();
    return 0;
}
`
