// Package workloads contains the benchmark suite of the paper's Appendix I
// rewritten in MC: Unix utilities (cal, cb, compact, diff, grep, nroff, od,
// sed, sort, tr, wc), numeric benchmarks (dhrystone, matmult, puzzle,
// sieve, whetstone, spline), and user code (mincost, and tinycc — a small
// expression compiler standing in for vpcc). Each workload carries a
// deterministic synthetic input so runs are reproducible.
package workloads

import (
	"strings"
	"sync"
)

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Class       string // "utility", "benchmark", "user"
	Description string
	Source      string // MC source (the prelude is appended automatically)
	Input       string
	NoPrelude   bool // program defines everything itself
	// OutputHint is the approximate number of output bytes the workload
	// writes, used to pre-size the emulator's output buffer. Purely an
	// allocation hint: a wrong value can never change results.
	OutputHint int
	// full is the memoized FullSource of a table-built workload, so the
	// serving hot path does not re-concatenate the prelude per request.
	// Empty for hand-constructed Workload values.
	full string
}

// Prelude is the tiny runtime library linked into every workload.
const Prelude = `
void prints(char *s) { for (; *s; s++) putchar(*s); }
void printi(int n) {
    if (n < 0) { putchar('-'); n = -n; }
    if (n >= 10) printi(n / 10);
    putchar('0' + n % 10);
}
void printn(void) { putchar('\n'); }
int readline(char *buf, int max) {
    int c;
    int n = 0;
    while ((c = getchar()) != -1) {
        if (c == '\n') { buf[n] = 0; return n; }
        if (n < max - 1) { buf[n] = c; n++; }
    }
    buf[n] = 0;
    if (n == 0) return -1;
    return n;
}
int streq(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    return *a == *b;
}
int slen(char *s) { int n = 0; for (; *s; s++) n++; return n; }
`

// workloadTable is the memoized suite: the deterministic inputs are
// generated (and the full sources concatenated) once per process, not
// once per lookup — ByName sits on brserve's per-request path.
type workloadTable struct {
	list  []Workload
	index map[string]int
}

var tableOnce = sync.OnceValue(func() *workloadTable {
	t := &workloadTable{list: buildAll(), index: map[string]int{}}
	for i := range t.list {
		w := &t.list[i]
		if w.NoPrelude {
			w.full = w.Source
		} else {
			w.full = Prelude + w.Source
		}
		t.index[w.Name] = i
	}
	return t
})

func table() *workloadTable { return tableOnce() }

// All returns every workload in a stable order. The slice is a fresh
// copy (callers may reorder or overlay it); the workload strings are
// shared, immutable, and built once.
func All() []Workload {
	t := table()
	out := make([]Workload, len(t.list))
	copy(out, t.list)
	return out
}

// buildAll constructs the suite table; use All (or ByName), which
// memoize it.
func buildAll() []Workload {
	return []Workload{
		{Name: "cal", Class: "utility", Description: "calendar generator", Source: srcCal, Input: "", OutputHint: 32768},
		{Name: "cb", Class: "utility", Description: "C program beautifier", Source: srcCb, Input: strings.Repeat(cbInput, 60), OutputHint: 8192},
		{Name: "compact", Class: "utility", Description: "file compression", Source: srcCompact, Input: textInput(40), OutputHint: 4096},
		{Name: "diff", Class: "utility", Description: "file differences", Source: srcDiff, Input: diffInput, OutputHint: 64},
		{Name: "grep", Class: "utility", Description: "search for pattern", Source: srcGrep, Input: "ing\n" + textInput(60), OutputHint: 4096},
		{Name: "nroff", Class: "utility", Description: "text formatter", Source: srcNroff, Input: textInput(50), OutputHint: 4096},
		{Name: "od", Class: "utility", Description: "octal dump", Source: srcOd, Input: textInput(12), OutputHint: 4096},
		{Name: "sed", Class: "utility", Description: "stream editor", Source: srcSed, Input: "the\nTHE\n" + textInput(50), OutputHint: 4096},
		{Name: "sort", Class: "utility", Description: "sort lines", Source: srcSort, Input: sortInput, OutputHint: 2048},
		{Name: "spline", Class: "benchmark", Description: "interpolate curve", Source: srcSpline, Input: "", OutputHint: 16},
		{Name: "tr", Class: "utility", Description: "translate characters", Source: srcTr, Input: "aeiou\nAEIOU\n" + textInput(40), OutputHint: 2048},
		{Name: "wc", Class: "utility", Description: "word count", Source: srcWc, Input: textInput(80), OutputHint: 16},
		{Name: "dhrystone", Class: "benchmark", Description: "synthetic integer benchmark", Source: srcDhrystone, Input: "", OutputHint: 16},
		{Name: "matmult", Class: "benchmark", Description: "matrix multiplication", Source: srcMatmult, Input: "", OutputHint: 16},
		{Name: "puzzle", Class: "benchmark", Description: "recursion and arrays", Source: srcPuzzle, Input: "", OutputHint: 32},
		{Name: "sieve", Class: "benchmark", Description: "iteration", Source: srcSieve, Input: "", OutputHint: 16},
		{Name: "whetstone", Class: "benchmark", Description: "floating-point arithmetic", Source: srcWhetstone, Input: "", OutputHint: 16},
		{Name: "mincost", Class: "user", Description: "VLSI circuit partitioning", Source: srcMincost, Input: "", OutputHint: 16},
		{Name: "tinycc", Class: "user", Description: "small expression compiler (vpcc stand-in)", Source: srcTinycc, Input: tinyccInput, OutputHint: 32},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	i, ok := table().index[name]
	if !ok {
		return Workload{}, false
	}
	return table().list[i], true
}

// FullSource returns the complete MC source of a workload (prelude + body).
func (w Workload) FullSource() string {
	if w.full != "" {
		return w.full
	}
	if w.NoPrelude {
		return w.Source
	}
	return Prelude + w.Source
}

// textInput generates n lines of deterministic prose-like text.
func textInput(n int) string {
	words := []string{
		"the", "register", "branch", "machine", "pipeline", "running",
		"compiler", "moving", "loop", "address", "instruction", "cache",
		"prefetching", "delay", "cycle", "target", "encoding", "jumping",
		"calling", "saving", "restoring", "counting", "estimating", "a",
		"of", "to", "and", "in", "is", "for",
	}
	var b strings.Builder
	seed := uint32(12345)
	next := func(mod int) int {
		seed = seed*1103515245 + 12345
		return int((seed >> 16) % uint32(mod))
	}
	for i := 0; i < n; i++ {
		wordsInLine := 4 + next(8)
		for j := 0; j < wordsInLine; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[next(len(words))])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var sortInput = func() string {
	var lines []string
	seed := uint32(99)
	for i := 0; i < 120; i++ {
		seed = seed*1664525 + 1013904223
		var sb strings.Builder
		n := 3 + int(seed>>28)
		s := seed
		for j := 0; j < n; j++ {
			s = s*1664525 + 1013904223
			sb.WriteByte(byte('a' + (s>>24)%26))
		}
		lines = append(lines, sb.String())
	}
	return strings.Join(lines, "\n") + "\n"
}()

var diffInput = func() string {
	a := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet", "kilo", "lima", "mike",
		"november", "oscar", "papa", "quebec", "romeo", "sierra", "tango"}
	b := append([]string{}, a...)
	b[3] = "DELTA"              // change
	b = append(b[:7], b[8:]...) // delete "hotel"
	b = append(b, "uniform", "victor")
	var sb strings.Builder
	for _, l := range a {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	sb.WriteString("%%\n")
	for _, l := range b {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}()

var cbInput = `int f(int x){
if(x>0){
return x;
}else{
while(x<0){
x++;
}
}
return 0;
}
`

var tinyccInput = `1+2*3
(4+5)*(6-2)
100/5-3*2
2*(3+4*(5+6))-1
7%3+10
-8+20
1+2+3+4+5+6+7+8+9+10
(1+2)*(3+4)*(5+6)
999-111*2
42
`
