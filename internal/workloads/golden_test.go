package workloads

// Golden outputs: every workload's output is pinned by hash so silent
// behavioral changes in the compiler, optimizer, code generators or
// emulators are caught immediately. Regenerate by running the generator in
// the commit history (or adapt TestWorkloadsDifferential's reference run)
// if a workload's source or input intentionally changes.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/isa"
)

type goldenEntry struct {
	sha    string // first 8 bytes of sha256, hex
	length int
	status int32
}

var goldenOutputs = map[string]goldenEntry{
	"cal":       {sha: "f2281a04622e31c8", length: 19020, status: 0},
	"cb":        {sha: "a9ec9db2ffad30b8", length: 7500, status: 0},
	"compact":   {sha: "d49649db380dc001", length: 2444, status: 0},
	"diff":      {sha: "ccda19a21baf086b", length: 43, status: 0},
	"grep":      {sha: "9177c7fa7d6d556d", length: 2809, status: 0},
	"nroff":     {sha: "9fcdc889b0e4bcec", length: 2412, status: 0},
	"od":        {sha: "174e83ba8f040a9f", length: 2556, status: 0},
	"sed":       {sha: "4e3c970eac857082", length: 2412, status: 0},
	"sort":      {sha: "53da3210677e1289", length: 1422, status: 0},
	"spline":    {sha: "a35d1c77317f0d8c", length: 12, status: 0},
	"tr":        {sha: "fe78165655cd4c16", length: 1874, status: 0},
	"wc":        {sha: "d83e8295385c397d", length: 12, status: 0},
	"dhrystone": {sha: "75ee8945b841b7ae", length: 7, status: 0},
	"matmult":   {sha: "49bf6378118cc529", length: 14, status: 0},
	"puzzle":    {sha: "3e8261681f0417b4", length: 23, status: 0},
	"sieve":     {sha: "82a7e55c955b8f04", length: 12, status: 0},
	"whetstone": {sha: "bf3c0cd5fcc87507", length: 12, status: 0},
	"mincost":   {sha: "4525471d6584229e", length: 10, status: 0},
	"tinycc":    {sha: "d6fc82df7acf3d35", length: 31, status: 0},
}

func TestGoldenOutputsPinned(t *testing.T) {
	o := driver.DefaultOptions()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			g, ok := goldenOutputs[w.Name]
			if !ok {
				t.Fatalf("no golden entry for %s", w.Name)
			}
			res, err := driver.Exec(context.Background(), driver.Request{Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input, Options: o})
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256([]byte(res.Output))
			got := fmt.Sprintf("%x", sum[:8])
			if got != g.sha || len(res.Output) != g.length || res.Status != g.status {
				t.Errorf("output changed: sha %s len %d status %d, golden sha %s len %d status %d",
					got, len(res.Output), res.Status, g.sha, g.length, g.status)
			}
		})
	}
}
