package workloads

import (
	"context"
	"strings"
	"testing"

	"branchreg/internal/driver"
	"branchreg/internal/irexec"
	"branchreg/internal/isa"
)

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("suite has %d workloads, want 19 (Appendix I)", len(all))
	}
	seen := map[string]bool{}
	classes := map[string]int{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		classes[w.Class]++
		if w.Description == "" || w.Source == "" {
			t.Errorf("%s: missing description or source", w.Name)
		}
	}
	if classes["utility"] < 10 || classes["benchmark"] < 5 || classes["user"] < 2 {
		t.Errorf("class mix wrong: %v", classes)
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("sieve")
	if !ok || w.Name != "sieve" {
		t.Fatal("ByName(sieve) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName should miss")
	}
}

// Every workload must compile for both machines, run to completion, and
// produce identical output on the IR interpreter, the baseline machine and
// the branch-register machine.
func TestWorkloadsDifferential(t *testing.T) {
	o := driver.DefaultOptions()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			src := w.FullSource()
			iu, err := driver.Lower(src, o)
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			refOut, refStatus, err := irexec.RunSource(iu, w.Input)
			if err != nil {
				t.Fatalf("irexec: %v", err)
			}
			if len(refOut) == 0 {
				t.Errorf("%s produces no output", w.Name)
			}
			for _, kind := range []isa.Kind{isa.Baseline, isa.BranchReg} {
				res, err := driver.Exec(context.Background(), driver.Request{Source: src, Kind: kind, Input: w.Input, Options: o})
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if res.Output != refOut || res.Status != refStatus {
					t.Errorf("%v diverges from reference\n got: %.120q (status %d)\nwant: %.120q (status %d)",
						kind, res.Output, res.Status, refOut, refStatus)
				}
				if res.Stats.Instructions < 10_000 {
					t.Errorf("%v: workload too small to measure: %d instructions",
						kind, res.Stats.Instructions)
				}
				if res.Stats.Instructions > 80_000_000 {
					t.Errorf("%v: workload too large: %d instructions",
						kind, res.Stats.Instructions)
				}
			}
		})
	}
}

// Spot-check a few golden outputs so changes to programs are visible.
func TestGoldenOutputs(t *testing.T) {
	o := driver.DefaultOptions()
	run := func(name string) string {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		res, err := driver.Exec(context.Background(), driver.Request{Source: w.FullSource(), Kind: isa.BranchReg, Input: w.Input, Options: o})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res.Output
	}
	if out := run("sieve"); !strings.Contains(out, "primes 1028") {
		t.Errorf("sieve output %q", out)
	}
	if out := run("wc"); !strings.Contains(out, "80 ") {
		t.Errorf("wc output %q", out)
	}
	if out := run("tinycc"); !strings.HasPrefix(out, "7\n36\n14\n") {
		t.Errorf("tinycc output %q", out)
	}
	if out := run("puzzle"); !strings.Contains(out, "success") {
		t.Errorf("puzzle output %q", out)
	}
	if out := run("cal"); !strings.Contains(out, "Su Mo Tu We Th Fr Sa") {
		t.Errorf("cal output %q", out)
	}
}
