// Package irexec is a reference interpreter for the IR. It gives MC
// programs an executable semantics independent of either machine's code
// generator, so the machine emulators can be differentially tested against
// it: the same program must produce the same output at the IR level, on the
// baseline machine, and on the branch-register machine.
package irexec

import (
	"fmt"
	"math"
	"strings"

	"branchreg/internal/ir"
)

// Layout constants (match isa so addresses look alike in diagnostics).
const (
	dataBase = 0x0010_0000
	stackTop = 0x0040_0000
	memBytes = 0x0040_0000
	maxSteps = 2_000_000_000
)

// ExitError reports a program that called exit(n) with n != 0.
type ExitError struct{ Status int32 }

func (e *ExitError) Error() string { return fmt.Sprintf("irexec: exit status %d", e.Status) }

// Machine executes an ir.Unit.
type Machine struct {
	unit    *ir.Unit
	funcs   map[string]*ir.Func
	mem     []byte
	dataSym map[string]int32
	input   []byte
	inPos   int
	out     strings.Builder
	steps   int64
	sp      int32 // frame stack pointer (grows down)
}

// New prepares a machine for the unit with the given stdin contents.
func New(u *ir.Unit, input string) (*Machine, error) {
	m := &Machine{
		unit:    u,
		funcs:   map[string]*ir.Func{},
		mem:     make([]byte, memBytes),
		dataSym: map[string]int32{},
		input:   []byte(input),
		sp:      stackTop,
	}
	for _, f := range u.Funcs {
		m.funcs[f.Name] = f
	}
	addr := int32(dataBase)
	align := func(a, n int32) int32 {
		if r := a % n; r != 0 {
			return a + n - r
		}
		return a
	}
	for i := range u.Data {
		d := &u.Data[i]
		al := int32(d.Align)
		if al == 0 {
			switch d.Kind {
			case ir.DBytes:
				al = 1
			case ir.DFloats:
				al = 8
			default:
				al = 4
			}
		}
		addr = align(addr, al)
		if _, dup := m.dataSym[d.Label]; dup {
			return nil, fmt.Errorf("irexec: duplicate data symbol %s", d.Label)
		}
		m.dataSym[d.Label] = addr
		switch d.Kind {
		case ir.DWords:
			for j, w := range d.Words {
				m.store32(addr+int32(j*4), w)
			}
			addr += int32(len(d.Words) * 4)
		case ir.DBytes:
			copy(m.mem[addr:], d.Bytes)
			addr += int32(len(d.Bytes))
		case ir.DFloats:
			for j, f := range d.Floats {
				m.storeF(addr+int32(j*8), f)
			}
			addr += int32(len(d.Floats) * 8)
		case ir.DZero:
			addr += int32(d.Size)
		}
	}
	// Apply data relocations after layout.
	for i := range u.Data {
		d := &u.Data[i]
		if d.Kind != ir.DWords {
			continue
		}
		base := m.dataSym[d.Label]
		for _, rl := range d.Relocs {
			sa, ok := m.dataSym[rl.Sym]
			if !ok {
				return nil, fmt.Errorf("irexec: %s: unknown reloc symbol %s", d.Label, rl.Sym)
			}
			off := base + int32(rl.WordIndex*4)
			m.store32(off, m.load32(off)+sa)
		}
	}
	return m, nil
}

// Output returns everything the program has written.
func (m *Machine) Output() string { return m.out.String() }

// Steps returns the number of IR instructions executed.
func (m *Machine) Steps() int64 { return m.steps }

func (m *Machine) store32(addr, v int32) {
	m.mem[addr] = byte(v)
	m.mem[addr+1] = byte(v >> 8)
	m.mem[addr+2] = byte(v >> 16)
	m.mem[addr+3] = byte(v >> 24)
}

func (m *Machine) load32(addr int32) int32 {
	return int32(m.mem[addr]) | int32(m.mem[addr+1])<<8 |
		int32(m.mem[addr+2])<<16 | int32(m.mem[addr+3])<<24
}

func (m *Machine) storeF(addr int32, f float64) {
	bits := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		m.mem[addr+int32(i)] = byte(bits >> (8 * i))
	}
}

func (m *Machine) loadF(addr int32) float64 {
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(m.mem[addr+int32(i)]) << (8 * i)
	}
	return math.Float64frombits(bits)
}

// Run executes main and returns its exit status.
func (m *Machine) Run() (int32, error) {
	main := m.funcs["main"]
	if main == nil {
		return 0, fmt.Errorf("irexec: no main function")
	}
	v, _, err := m.call(main, nil, nil)
	if err != nil {
		if ee, ok := err.(*ExitError); ok {
			return ee.Status, nil
		}
		return 0, err
	}
	return v, nil
}

type frame struct {
	f       *ir.Func
	ints    []int32
	floats  []float64
	slotOff []int32
}

func (m *Machine) call(f *ir.Func, intArgs []int32, fltArgs []float64) (int32, float64, error) {
	if m.sp < memBytes/2 {
		return 0, 0, fmt.Errorf("irexec: stack overflow in %s", f.Name)
	}
	fr := &frame{
		f:       f,
		ints:    make([]int32, f.NumInt),
		floats:  make([]float64, f.NumFloat),
		slotOff: make([]int32, len(f.Slots)),
	}
	savedSP := m.sp
	for i, s := range f.Slots {
		al := s.Align
		if al == 0 {
			al = 4
		}
		m.sp -= s.Size
		if r := m.sp % al; r != 0 {
			m.sp -= r
		}
		fr.slotOff[i] = m.sp
	}
	defer func() { m.sp = savedSP }()

	ii, fi := 0, 0
	for _, p := range f.Params {
		if p.Float {
			fr.floats[p.R] = fltArgs[fi]
			fi++
		} else {
			fr.ints[p.R] = intArgs[ii]
			ii++
		}
	}

	blk := f.Entry()
	for {
		next, ri, rf, done, err := m.execBlock(fr, blk)
		if err != nil {
			return 0, 0, err
		}
		if done {
			return ri, rf, nil
		}
		blk = next
	}
}

func (m *Machine) execBlock(fr *frame, b *ir.Block) (next *ir.Block, ri int32, rf float64, done bool, err error) {
	f := fr.f
	for i := range b.Ins {
		in := &b.Ins[i]
		m.steps++
		if m.steps > maxSteps {
			return nil, 0, 0, false, fmt.Errorf("irexec: %s: step limit exceeded", f.Name)
		}
		rhs := func() int32 {
			if in.UseImm {
				return int32(in.Imm)
			}
			return fr.ints[in.B]
		}
		switch in.Kind {
		case ir.OpConst:
			fr.ints[in.Dst] = int32(in.Imm)
		case ir.OpConstF:
			fr.floats[in.FDst] = in.FImm
		case ir.OpAddr:
			a, ok := m.dataSym[in.Sym]
			if !ok {
				return nil, 0, 0, false, fmt.Errorf("irexec: %s: unknown symbol %s", f.Name, in.Sym)
			}
			fr.ints[in.Dst] = a + in.Off
		case ir.OpSlotAddr:
			fr.ints[in.Dst] = fr.slotOff[in.Slot] + in.Off
		case ir.OpMov:
			fr.ints[in.Dst] = fr.ints[in.A]
		case ir.OpMovF:
			fr.floats[in.FDst] = fr.floats[in.FA]
		case ir.OpAdd:
			fr.ints[in.Dst] = fr.ints[in.A] + rhs()
		case ir.OpSub:
			fr.ints[in.Dst] = fr.ints[in.A] - rhs()
		case ir.OpMul:
			fr.ints[in.Dst] = fr.ints[in.A] * rhs()
		case ir.OpDiv:
			d := rhs()
			if d == 0 {
				return nil, 0, 0, false, fmt.Errorf("irexec: %s: division by zero", f.Name)
			}
			fr.ints[in.Dst] = fr.ints[in.A] / d
		case ir.OpRem:
			d := rhs()
			if d == 0 {
				return nil, 0, 0, false, fmt.Errorf("irexec: %s: modulo by zero", f.Name)
			}
			fr.ints[in.Dst] = fr.ints[in.A] % d
		case ir.OpAnd:
			fr.ints[in.Dst] = fr.ints[in.A] & rhs()
		case ir.OpOr:
			fr.ints[in.Dst] = fr.ints[in.A] | rhs()
		case ir.OpXor:
			fr.ints[in.Dst] = fr.ints[in.A] ^ rhs()
		case ir.OpSll:
			fr.ints[in.Dst] = fr.ints[in.A] << (uint32(rhs()) & 31)
		case ir.OpSrl:
			fr.ints[in.Dst] = int32(uint32(fr.ints[in.A]) >> (uint32(rhs()) & 31))
		case ir.OpSra:
			fr.ints[in.Dst] = fr.ints[in.A] >> (uint32(rhs()) & 31)
		case ir.OpFAdd:
			fr.floats[in.FDst] = fr.floats[in.FA] + fr.floats[in.FB]
		case ir.OpFSub:
			fr.floats[in.FDst] = fr.floats[in.FA] - fr.floats[in.FB]
		case ir.OpFMul:
			fr.floats[in.FDst] = fr.floats[in.FA] * fr.floats[in.FB]
		case ir.OpFDiv:
			fr.floats[in.FDst] = fr.floats[in.FA] / fr.floats[in.FB]
		case ir.OpFNeg:
			fr.floats[in.FDst] = -fr.floats[in.FA]
		case ir.OpCvIF:
			fr.floats[in.FDst] = float64(fr.ints[in.A])
		case ir.OpCvFI:
			fr.ints[in.Dst] = int32(fr.floats[in.FA])
		case ir.OpSetCond:
			if holds(in.Cond, fr.ints[in.A], rhs()) {
				fr.ints[in.Dst] = 1
			} else {
				fr.ints[in.Dst] = 0
			}
		case ir.OpSetCondF:
			if holdsF(in.Cond, fr.floats[in.FA], fr.floats[in.FB]) {
				fr.ints[in.Dst] = 1
			} else {
				fr.ints[in.Dst] = 0
			}
		case ir.OpLoad:
			addr := fr.ints[in.A] + in.Off
			if err := m.checkAddr(f, addr, in.Size); err != nil {
				return nil, 0, 0, false, err
			}
			if in.Size == 1 {
				fr.ints[in.Dst] = int32(int8(m.mem[addr]))
			} else {
				fr.ints[in.Dst] = m.load32(addr)
			}
		case ir.OpLoadF:
			addr := fr.ints[in.A] + in.Off
			if err := m.checkAddr(f, addr, 8); err != nil {
				return nil, 0, 0, false, err
			}
			fr.floats[in.FDst] = m.loadF(addr)
		case ir.OpStore:
			addr := fr.ints[in.A] + in.Off
			if err := m.checkAddr(f, addr, in.Size); err != nil {
				return nil, 0, 0, false, err
			}
			if in.Size == 1 {
				m.mem[addr] = byte(fr.ints[in.B])
			} else {
				m.store32(addr, fr.ints[in.B])
			}
		case ir.OpStoreF:
			addr := fr.ints[in.A] + in.Off
			if err := m.checkAddr(f, addr, 8); err != nil {
				return nil, 0, 0, false, err
			}
			m.storeF(addr, fr.floats[in.FB])
		case ir.OpCall:
			var ia []int32
			var fa []float64
			for _, a := range in.Args {
				if a.Float {
					fa = append(fa, fr.floats[a.R])
				} else {
					ia = append(ia, fr.ints[a.R])
				}
			}
			if in.Builtin {
				rv, err := m.builtin(in.Sym, ia, fa)
				if err != nil {
					return nil, 0, 0, false, err
				}
				if in.Dst != ir.None {
					fr.ints[in.Dst] = rv
				}
				break
			}
			callee := m.funcs[in.Sym]
			if callee == nil {
				return nil, 0, 0, false, fmt.Errorf("irexec: %s: call to unknown function %s", f.Name, in.Sym)
			}
			rv, rvf, err := m.call(callee, ia, fa)
			if err != nil {
				return nil, 0, 0, false, err
			}
			if in.Dst != ir.None {
				fr.ints[in.Dst] = rv
			}
			if in.FDst != ir.None {
				fr.floats[in.FDst] = rvf
			}
		case ir.OpJump:
			return f.BlockByLabel(in.Targets[0]), 0, 0, false, nil
		case ir.OpBr:
			if holds(in.Cond, fr.ints[in.A], rhs()) {
				return f.BlockByLabel(in.Targets[0]), 0, 0, false, nil
			}
			return f.BlockByLabel(in.Targets[1]), 0, 0, false, nil
		case ir.OpBrF:
			if holdsF(in.Cond, fr.floats[in.FA], fr.floats[in.FB]) {
				return f.BlockByLabel(in.Targets[0]), 0, 0, false, nil
			}
			return f.BlockByLabel(in.Targets[1]), 0, 0, false, nil
		case ir.OpSwitch:
			v := fr.ints[in.A]
			target := in.Targets[0]
			for _, c := range in.Cases {
				if int32(c.Val) == v {
					target = c.Target
					break
				}
			}
			return f.BlockByLabel(target), 0, 0, false, nil
		case ir.OpRet:
			var rvi int32
			var rvf float64
			if in.A != ir.None {
				rvi = fr.ints[in.A]
			}
			if in.FA != ir.None {
				rvf = fr.floats[in.FA]
			}
			return nil, rvi, rvf, true, nil
		default:
			return nil, 0, 0, false, fmt.Errorf("irexec: %s: unimplemented op %v", f.Name, in.Kind)
		}
	}
	return nil, 0, 0, false, fmt.Errorf("irexec: %s: block %s fell off the end", f.Name, b.Label)
}

func (m *Machine) checkAddr(f *ir.Func, addr int32, size int) error {
	if addr < dataBase || int(addr)+size > len(m.mem) {
		return fmt.Errorf("irexec: %s: memory access out of range: %#x", f.Name, uint32(addr))
	}
	return nil
}

func (m *Machine) builtin(name string, ia []int32, fa []float64) (int32, error) {
	switch name {
	case "getchar":
		if m.inPos >= len(m.input) {
			return -1, nil
		}
		c := m.input[m.inPos]
		m.inPos++
		return int32(c), nil
	case "putchar":
		m.out.WriteByte(byte(ia[0]))
		return 0, nil
	case "putfloat":
		fmt.Fprintf(&m.out, "%.4f", fa[0])
		return 0, nil
	case "exit":
		return 0, &ExitError{Status: ia[0]}
	}
	return 0, fmt.Errorf("irexec: unknown builtin %s", name)
}

func holds(c ir.Cond, a, b int32) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

func holdsF(c ir.Cond, a, b float64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

// RunSource is a convenience for tests: interpret an ir.Unit with input,
// returning output and exit status.
func RunSource(u *ir.Unit, input string) (string, int32, error) {
	m, err := New(u, input)
	if err != nil {
		return "", 0, err
	}
	status, err := m.Run()
	return m.Output(), status, err
}
