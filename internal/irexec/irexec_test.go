package irexec

import (
	"strings"
	"testing"

	"branchreg/internal/ir"
)

// tiny hand-built unit: main calls add(2,3) and returns the result.
func buildUnit() *ir.Unit {
	add := ir.NewFunc("add")
	x := add.NewIntReg()
	y := add.NewIntReg()
	z := add.NewIntReg()
	add.Params = []ir.Arg{{R: x}, {R: y}}
	ab := add.NewBlock("entry")
	ab.Ins = append(ab.Ins,
		ir.Ins{Kind: ir.OpAdd, Dst: z, A: x, B: y},
		ir.Ins{Kind: ir.OpRet, A: z, FA: ir.None})

	main := ir.NewFunc("main")
	a := main.NewIntReg()
	b := main.NewIntReg()
	r := main.NewIntReg()
	mb := main.NewBlock("entry")
	mb.Ins = append(mb.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: a, Imm: 2},
		ir.Ins{Kind: ir.OpConst, Dst: b, Imm: 3},
		ir.Ins{Kind: ir.OpCall, Sym: "add", Dst: r, FDst: ir.None,
			Args: []ir.Arg{{R: a}, {R: b}}},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	return &ir.Unit{Funcs: []*ir.Func{add, main}}
}

func TestCallAndReturn(t *testing.T) {
	out, status, err := RunSource(buildUnit(), "")
	if err != nil {
		t.Fatal(err)
	}
	if status != 5 || out != "" {
		t.Errorf("status = %d out = %q", status, out)
	}
}

func TestMissingMain(t *testing.T) {
	u := &ir.Unit{Funcs: []*ir.Func{ir.NewFunc("notmain")}}
	if _, _, err := RunSource(u, ""); err == nil {
		t.Error("missing main accepted")
	}
}

func TestDivByZeroReported(t *testing.T) {
	f := ir.NewFunc("main")
	a := f.NewIntReg()
	d := f.NewIntReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: a, Imm: 1},
		ir.Ins{Kind: ir.OpDiv, Dst: d, A: a, UseImm: true, Imm: 0},
		ir.Ins{Kind: ir.OpRet, A: d, FA: ir.None})
	_, _, err := RunSource(&ir.Unit{Funcs: []*ir.Func{f}}, "")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestMemoryBoundsChecked(t *testing.T) {
	f := ir.NewFunc("main")
	a := f.NewIntReg()
	d := f.NewIntReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: a, Imm: 16}, // below the data base
		ir.Ins{Kind: ir.OpLoad, Dst: d, A: a, Size: 4},
		ir.Ins{Kind: ir.OpRet, A: d, FA: ir.None})
	_, _, err := RunSource(&ir.Unit{Funcs: []*ir.Func{f}}, "")
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestDataLayoutAndRelocs(t *testing.T) {
	f := ir.NewFunc("main")
	p := f.NewIntReg()
	q := f.NewIntReg()
	v := f.NewIntReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		// load the pointer stored in "ptr" (reloc to "msg"), then the
		// first byte it points at
		ir.Ins{Kind: ir.OpAddr, Dst: p, Sym: "ptr"},
		ir.Ins{Kind: ir.OpLoad, Dst: q, A: p, Size: 4},
		ir.Ins{Kind: ir.OpLoad, Dst: v, A: q, Size: 1},
		ir.Ins{Kind: ir.OpRet, A: v, FA: ir.None})
	u := &ir.Unit{
		Funcs: []*ir.Func{f},
		Data: []ir.Datum{
			{Label: "msg", Kind: ir.DBytes, Bytes: []byte("Z")},
			{Label: "ptr", Kind: ir.DWords, Words: []int32{0},
				Relocs: []ir.Reloc{{WordIndex: 0, Sym: "msg"}}},
		},
	}
	_, status, err := RunSource(u, "")
	if err != nil {
		t.Fatal(err)
	}
	if status != 'Z' {
		t.Errorf("status = %d, want %d", status, 'Z')
	}
}

func TestBuiltinsAndSteps(t *testing.T) {
	f := ir.NewFunc("main")
	c := f.NewIntReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		ir.Ins{Kind: ir.OpCall, Sym: "getchar", Dst: c, FDst: ir.None, Builtin: true},
		ir.Ins{Kind: ir.OpCall, Sym: "putchar", Dst: ir.None, FDst: ir.None, Builtin: true,
			Args: []ir.Arg{{R: c}}},
		ir.Ins{Kind: ir.OpRet, A: c, FA: ir.None})
	m, err := New(&ir.Unit{Funcs: []*ir.Func{f}}, "Q")
	if err != nil {
		t.Fatal(err)
	}
	status, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Output() != "Q" || status != 'Q' {
		t.Errorf("out %q status %d", m.Output(), status)
	}
	if m.Steps() == 0 {
		t.Error("step counter not advancing")
	}
}

func TestExitStatusPropagates(t *testing.T) {
	f := ir.NewFunc("main")
	v := f.NewIntReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: v, Imm: 33},
		ir.Ins{Kind: ir.OpCall, Sym: "exit", Dst: ir.None, FDst: ir.None, Builtin: true,
			Args: []ir.Arg{{R: v}}},
		ir.Ins{Kind: ir.OpRet, A: ir.None, FA: ir.None})
	_, status, err := RunSource(&ir.Unit{Funcs: []*ir.Func{f}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if status != 33 {
		t.Errorf("status = %d", status)
	}
}

func TestSwitchDispatch(t *testing.T) {
	f := ir.NewFunc("main")
	v := f.NewIntReg()
	r := f.NewIntReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: v, Imm: 2},
		ir.Ins{Kind: ir.OpSwitch, A: v,
			Cases:   []ir.SwitchCase{{Val: 1, Target: "one"}, {Val: 2, Target: "two"}},
			Targets: []string{"def"}})
	one := f.NewBlock("one")
	one.Ins = append(one.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: r, Imm: 10},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	two := f.NewBlock("two")
	two.Ins = append(two.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: r, Imm: 20},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	def := f.NewBlock("def")
	def.Ins = append(def.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: r, Imm: 30},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	_, status, err := RunSource(&ir.Unit{Funcs: []*ir.Func{f}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if status != 20 {
		t.Errorf("status = %d, want 20", status)
	}
}

func TestFloatOpsAndBranches(t *testing.T) {
	f := ir.NewFunc("main")
	f.RetFloat = false
	f.HasRet = true
	a := f.NewFloatReg()
	bb := f.NewFloatReg()
	c := f.NewFloatReg()
	r := f.NewIntReg()
	e := f.NewBlock("entry")
	e.Ins = append(e.Ins,
		ir.Ins{Kind: ir.OpConstF, FDst: a, FImm: 3.5},
		ir.Ins{Kind: ir.OpConstF, FDst: bb, FImm: 1.25},
		ir.Ins{Kind: ir.OpFMul, FDst: c, FA: a, FB: bb}, // 4.375
		ir.Ins{Kind: ir.OpFSub, FDst: c, FA: c, FB: bb}, // 3.125
		ir.Ins{Kind: ir.OpFDiv, FDst: c, FA: c, FB: bb}, // 2.5
		ir.Ins{Kind: ir.OpFNeg, FDst: c, FA: c},         // -2.5
		ir.Ins{Kind: ir.OpFAdd, FDst: c, FA: c, FB: a},  // 1.0
		ir.Ins{Kind: ir.OpBrF, FA: c, FB: bb, Cond: ir.CondLT,
			Targets: []string{"less", "geq"}})
	l := f.NewBlock("less")
	l.Ins = append(l.Ins,
		ir.Ins{Kind: ir.OpCvFI, Dst: r, FA: c},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	g := f.NewBlock("geq")
	g.Ins = append(g.Ins,
		ir.Ins{Kind: ir.OpConst, Dst: r, Imm: 99},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	_, status, err := RunSource(&ir.Unit{Funcs: []*ir.Func{f}}, "")
	if err != nil {
		t.Fatal(err)
	}
	// c = 1.0, b = 1.25 -> less; (int)1.0 = 1
	if status != 1 {
		t.Errorf("status = %d, want 1", status)
	}
}

func TestFloatMemoryAndSetCond(t *testing.T) {
	f := ir.NewFunc("main")
	p := f.NewIntReg()
	r := f.NewIntReg()
	x := f.NewFloatReg()
	b := f.NewBlock("entry")
	b.Ins = append(b.Ins,
		ir.Ins{Kind: ir.OpAddr, Dst: p, Sym: "fv"},
		ir.Ins{Kind: ir.OpLoadF, FDst: x, A: p, Size: 8},
		ir.Ins{Kind: ir.OpFAdd, FDst: x, FA: x, FB: x},
		ir.Ins{Kind: ir.OpStoreF, A: p, FB: x, Off: 8, Size: 8},
		ir.Ins{Kind: ir.OpLoadF, FDst: x, A: p, Off: 8, Size: 8},
		ir.Ins{Kind: ir.OpSetCondF, Dst: r, FA: x, FB: x, Cond: ir.CondEQ},
		ir.Ins{Kind: ir.OpCvFI, Dst: p, FA: x},
		ir.Ins{Kind: ir.OpAdd, Dst: r, A: r, B: p},
		ir.Ins{Kind: ir.OpRet, A: r, FA: ir.None})
	u := &ir.Unit{Funcs: []*ir.Func{f},
		Data: []ir.Datum{{Label: "fv", Kind: ir.DFloats, Floats: []float64{2.25, 0}}}}
	_, status, err := RunSource(u, "")
	if err != nil {
		t.Fatal(err)
	}
	// 2.25*2 = 4.5 stored and reloaded; setcond 1; (int)4.5 = 4 -> 5
	if status != 5 {
		t.Errorf("status = %d, want 5", status)
	}
}

func TestFloatReturnValue(t *testing.T) {
	h := ir.NewFunc("half")
	xi := h.NewFloatReg()
	h.Params = []ir.Arg{{R: xi, Float: true}}
	ho := h.NewFloatReg()
	two := h.NewFloatReg()
	hb := h.NewBlock("entry")
	hb.Ins = append(hb.Ins,
		ir.Ins{Kind: ir.OpConstF, FDst: two, FImm: 2.0},
		ir.Ins{Kind: ir.OpFDiv, FDst: ho, FA: xi, FB: two},
		ir.Ins{Kind: ir.OpRet, A: ir.None, FA: ho})

	m := ir.NewFunc("main")
	arg := m.NewFloatReg()
	resF := m.NewFloatReg()
	resI := m.NewIntReg()
	mb := m.NewBlock("entry")
	mb.Ins = append(mb.Ins,
		ir.Ins{Kind: ir.OpConstF, FDst: arg, FImm: 9.0},
		ir.Ins{Kind: ir.OpCall, Sym: "half", Dst: ir.None, FDst: resF,
			Args: []ir.Arg{{R: arg, Float: true}}},
		ir.Ins{Kind: ir.OpCvFI, Dst: resI, FA: resF},
		ir.Ins{Kind: ir.OpRet, A: resI, FA: ir.None})
	_, status, err := RunSource(&ir.Unit{Funcs: []*ir.Func{h, m}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if status != 4 {
		t.Errorf("status = %d, want 4", status)
	}
}
